//! The [`Model`] trait and model-generic helpers (flat parameter vectors,
//! mask application, sparse layouts, accuracy).

use crate::layer::{BnStats, Mode};
use crate::param::Param;
use ft_sparse::{Mask, SparseLayout, WireCtx};
use ft_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Architecture entry for one compute layer, consumed by the analytic
/// FLOPs/memory accounting in `ft-metrics`.
///
/// `prunable_idx` links the entry to its index in the model's
/// [`SparseLayout`] (i.e. its mask layer) when the layer's weight is
/// prunable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LayerArch {
    /// A convolution: `weights = out_c·in_c·k²`, output `out_h × out_w`.
    Conv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel side.
        kernel: usize,
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
        /// Mask layer index if prunable.
        prunable_idx: Option<usize>,
    },
    /// A fully-connected layer.
    Linear {
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
        /// Mask layer index if prunable.
        prunable_idx: Option<usize>,
    },
    /// A batch-normalization layer over `channels` at `spatial` positions.
    BatchNorm {
        /// Channels.
        channels: usize,
        /// `h·w` positions the statistics reduce over.
        spatial: usize,
    },
}

/// Static description of a model: its compute layers in execution order plus
/// the input geometry, enough for cost accounting without touching weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchInfo {
    /// Human-readable model name (e.g. `"resnet18"`).
    pub name: String,
    /// Input `[channels, height, width]`.
    pub input: [usize; 3],
    /// Number of output classes.
    pub classes: usize,
    /// Compute layers in execution order.
    pub layers: Vec<LayerArch>,
}

/// The object-safe interface every network in this workspace implements.
///
/// The federated simulator, the pruning baselines, and FedTiny itself only
/// interact with models through this trait, so adding a new architecture
/// means implementing exactly these methods.
pub trait Model: Send + Sync {
    /// Forward pass producing logits `[n, classes]`.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Backward pass from the logits gradient; accumulates into
    /// [`Param::grad`].
    fn backward(&mut self, grad_logits: &Tensor);

    /// Forward pass into a caller-owned logits tensor. The default
    /// delegates to [`Model::forward`]; architectures with internal scratch
    /// arenas override this to run allocation-free at steady state.
    fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        *out = self.forward(x, mode);
    }

    /// Backward pass that discards the input gradient. The default
    /// delegates to [`Model::backward`]; arena-backed architectures
    /// override this to avoid materializing the returned gradient.
    fn backward_scratch(&mut self, grad_logits: &Tensor) {
        self.backward(grad_logits);
    }

    /// All parameters in deterministic execution order.
    fn params(&self) -> Vec<&Param>;

    /// All parameters, mutably, in the same order as [`Model::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Visits every parameter in [`Model::params`] order. The default
    /// collects through [`Model::params`]; arena-backed models override it
    /// to iterate without allocating.
    fn for_each_param(&self, f: &mut dyn FnMut(&Param)) {
        for p in self.params() {
            f(p);
        }
    }

    /// Visits every parameter mutably, in [`Model::params`] order, without
    /// allocating (when overridden).
    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Visits every BatchNorm layer's running statistics in execution order.
    fn for_each_bn_stats(&self, f: &mut dyn FnMut(&BnStats)) {
        for s in self.bn_stats() {
            f(s);
        }
    }

    /// Visits every BatchNorm layer's running statistics mutably.
    fn for_each_bn_stats_mut(&mut self, f: &mut dyn FnMut(&mut BnStats)) {
        for s in self.bn_stats_mut() {
            f(s);
        }
    }

    /// Running statistics of every BatchNorm layer, in execution order.
    fn bn_stats(&self) -> Vec<&BnStats>;

    /// Mutable running statistics of every BatchNorm layer.
    fn bn_stats_mut(&mut self) -> Vec<&mut BnStats>;

    /// Overrides the momentum of every BatchNorm layer. Setting 1.0 makes a
    /// single `Train`-mode forward pass replace the running statistics with
    /// the batch statistics (FedTiny's BN adaptation).
    fn set_bn_momentum(&mut self, momentum: f32);

    /// Deep copy as a boxed trait object.
    fn clone_model(&self) -> Box<dyn Model>;

    /// Static architecture description.
    fn arch(&self) -> ArchInfo;

    /// Partition of *prunable layer indices* into the blocks progressive
    /// pruning iterates over (Fig. 2 of the paper: 5 blocks).
    fn block_partition(&self) -> Vec<Vec<usize>>;

    /// Sets the density crossover below which weighted layers execute on the
    /// sparse CSR kernels instead of the dense GEMMs. `0.0` forces the dense
    /// path everywhere — required by gradient-scoring passes that read
    /// gradients of *pruned* coordinates (grow steps), because the sparse
    /// backward only produces mask-alive weight gradients. `1.0` forces the
    /// sparse path for every masked layer. The default is
    /// [`crate::layer::DEFAULT_SPARSE_CROSSOVER`].
    fn set_sparse_crossover(&mut self, _crossover: f32) {}

    /// Hands every kernel-bearing layer the parallel
    /// [`Runtime`](ft_runtime::Runtime) its GEMM / im2col / pooling kernels
    /// execute on. Models default to the sequential runtime; because the
    /// parallel kernels are bit-identical to the sequential ones, this only
    /// changes wall-clock, never outputs. Cloned models (e.g. per-device
    /// snapshots in `ft-fl`) inherit the runtime of their source.
    fn set_runtime(&mut self, _rt: ft_runtime::Runtime) {}

    /// Multiply–accumulate FLOPs actually executed by the model's forward
    /// and backward GEMMs since the last reset — the *realized* counterpart
    /// of `ft-metrics`' analytic counts. Models that do not track this
    /// return 0.
    fn realized_flops(&self) -> f64 {
        0.0
    }

    /// Clears the realized-FLOPs counters.
    fn reset_realized_flops(&mut self) {}

    /// Clears every gradient accumulator.
    fn zero_grad(&mut self) {
        self.for_each_param_mut(&mut |p| p.zero_grad());
    }
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// Splits `n` prunable layers into `blocks` contiguous, near-equal groups.
/// Used by models to implement [`Model::block_partition`].
pub(crate) fn contiguous_blocks(n: usize, blocks: usize) -> Vec<Vec<usize>> {
    if n == 0 || blocks == 0 {
        return Vec::new();
    }
    let blocks = blocks.min(n);
    let mut out = Vec::with_capacity(blocks);
    let base = n / blocks;
    let extra = n % blocks;
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        out.push((start..start + len).collect());
        start += len;
    }
    out
}

/// Flattens every parameter (prunable or not) into one `Vec<f32>`, in
/// [`Model::params`] order. The inverse is [`set_flat_params`].
pub fn flat_params(model: &dyn Model) -> Vec<f32> {
    let mut out = Vec::new();
    flat_params_into(model, &mut out);
    out
}

/// [`flat_params`] into a caller-owned vector: the vector is cleared and
/// refilled, reusing its capacity, so steady-state callers allocate nothing.
pub fn flat_params_into(model: &dyn Model, out: &mut Vec<f32>) {
    out.clear();
    model.for_each_param(&mut |p| out.extend_from_slice(p.data.data()));
}

/// Writes a flat vector produced by [`flat_params`] back into the model.
///
/// # Panics
///
/// Panics if `flat.len()` differs from the model's total parameter count.
pub fn set_flat_params(model: &mut dyn Model, flat: &[f32]) {
    let mut offset = 0;
    model.for_each_param_mut(&mut |p| {
        let n = p.len();
        assert!(
            offset + n <= flat.len(),
            "flat parameter vector too short: {} < {}",
            flat.len(),
            offset + n
        );
        p.data.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    assert_eq!(offset, flat.len(), "flat parameter vector too long");
}

/// Extracts the [`SparseLayout`] of a model: one entry per prunable
/// parameter, in [`Model::params`] order.
pub fn sparse_layout(model: &dyn Model) -> SparseLayout {
    SparseLayout::new(
        model
            .params()
            .into_iter()
            .filter(|p| p.prunable)
            .map(|p| (p.name.clone(), p.len()))
            .collect(),
    )
}

/// Zeroes pruned weights in place: `θ = Θ ⊙ m`.
///
/// Also records the mask on each prunable [`Param`] (bits, density, and a
/// bumped epoch), which is what arms the sparse execution dispatch in
/// `Conv2d` / `Linear`: from the next forward pass on, layers whose density
/// is at or below their crossover run on the CSR kernels.
///
/// # Panics
///
/// Panics if the mask does not match the model's prunable layout.
pub fn apply_mask(model: &mut dyn Model, mask: &Mask) {
    let mut l = 0;
    model.for_each_param_mut(&mut |p| {
        if p.prunable {
            mask.apply_layer(l, p.data.data_mut());
            p.note_mask(mask.layer(l));
            l += 1;
        }
    });
    assert_eq!(l, mask.num_layers(), "mask layer count mismatch");
}

/// Zeroes the gradients of pruned weights: `∇L ⊙ m` (Eq. 5 — sparse SGD only
/// updates surviving coordinates).
///
/// # Panics
///
/// Panics if the mask does not match the model's prunable layout.
pub fn mask_grads(model: &mut dyn Model, mask: &Mask) {
    let mut l = 0;
    model.for_each_param_mut(&mut |p| {
        if p.prunable {
            mask.apply_layer(l, p.grad.data_mut());
            l += 1;
        }
    });
    assert_eq!(l, mask.num_layers(), "mask layer count mismatch");
}

/// Builds the [`WireCtx`] the update codecs encode/decode against: one
/// aliveness bit per coordinate of [`flat_params`] (prunable coordinates
/// from `mask`, unprunable ones always alive), the parameter-tensor segment
/// lengths, and the mask epoch stamped on the context.
///
/// # Panics
///
/// Panics if the mask does not match the model's prunable layout.
pub fn wire_ctx(model: &dyn Model, mask: &Mask, epoch: u64) -> WireCtx {
    let params = model.params();
    let mut alive = Vec::with_capacity(params.iter().map(|p| p.len()).sum());
    let mut segments = Vec::with_capacity(params.len());
    let mut l = 0;
    for p in &params {
        segments.push(p.len());
        if p.prunable {
            alive.extend_from_slice(mask.layer(l));
            l += 1;
        } else {
            alive.extend(std::iter::repeat_n(true, p.len()));
        }
    }
    assert_eq!(l, mask.num_layers(), "mask layer count mismatch");
    WireCtx::new(alive, segments, epoch)
}

/// A bit-exact snapshot of a model's learnable state: the flat parameter
/// vector plus every BatchNorm layer's running statistics — everything a
/// transport must ship (or a checkpoint must persist) so a receiver's
/// [`restore_snapshot`] reproduces the sender's model exactly.
///
/// # Examples
///
/// ```
/// use ft_nn::models::SmallCnn;
/// use ft_nn::{restore_snapshot, take_snapshot};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let src = SmallCnn::new(&mut rng, 8, 10, 3, 4);
/// let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut dst = SmallCnn::new(&mut rng2, 8, 10, 3, 4);
/// restore_snapshot(&mut dst, &take_snapshot(&src));
/// assert_eq!(take_snapshot(&dst), take_snapshot(&src));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Every parameter, flattened in [`Model::params`] order.
    pub params: Vec<f32>,
    /// BatchNorm running statistics, in execution order.
    pub bn: Vec<BnStats>,
}

/// Captures a model's learnable state ([`flat_params`] + BN statistics).
pub fn take_snapshot(model: &dyn Model) -> ModelSnapshot {
    ModelSnapshot {
        params: flat_params(model),
        bn: model.bn_stats().into_iter().cloned().collect(),
    }
}

/// Writes a snapshot back into a model of the same architecture; the
/// round-trip with [`take_snapshot`] is exact (no float re-serialization).
///
/// # Panics
///
/// Panics if the parameter count or the BatchNorm layer structure differs
/// from the model's.
pub fn restore_snapshot(model: &mut dyn Model, snap: &ModelSnapshot) {
    set_flat_params(model, &snap.params);
    let mut l = 0;
    model.for_each_bn_stats_mut(&mut |dst| {
        let src = snap
            .bn
            .get(l)
            .expect("BatchNorm layer count mismatch: snapshot has too few");
        assert_eq!(dst.mean.len(), src.mean.len(), "BatchNorm channel mismatch");
        // Element copies instead of `clone()` so the restore reuses the
        // destination buffers.
        dst.mean.copy_from_slice(&src.mean);
        dst.var.copy_from_slice(&src.var);
        l += 1;
    });
    assert_eq!(l, snap.bn.len(), "BatchNorm layer count mismatch");
}

/// Exact wire bytes of one full set of BatchNorm statistics (what a device
/// uploads per candidate in Alg. 1): a `u32` layer count, then per layer a
/// `u32` channel count and `mean`/`var` as `f32` pairs.
pub fn bn_stats_encoded_len(stats: &[&BnStats]) -> usize {
    4 + stats
        .iter()
        .map(|s| 4 + 4 * (s.mean.len() + s.var.len()))
        .sum::<usize>()
}

/// Indices into [`Model::params`] of the prunable parameters, in prunable
/// (mask-layer) order.
pub fn prunable_param_indices(model: &dyn Model) -> Vec<usize> {
    model
        .params()
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.prunable.then_some(i))
        .collect()
}

/// Top-1 accuracy of logits against labels.
///
/// # Panics
///
/// Panics if the batch sizes differ or the batch is empty.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "accuracy batch mismatch");
    assert!(!labels.is_empty(), "accuracy of empty batch");
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_cover_everything() {
        let b = contiguous_blocks(7, 3);
        assert_eq!(b, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]]);
        let flat: Vec<usize> = b.into_iter().flatten().collect();
        assert_eq!(flat, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn contiguous_blocks_edge_cases() {
        assert!(contiguous_blocks(0, 5).is_empty());
        assert!(contiguous_blocks(5, 0).is_empty());
        assert_eq!(contiguous_blocks(3, 5).len(), 3); // capped at n
        assert_eq!(contiguous_blocks(10, 1), vec![(0..10).collect::<Vec<_>>()]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn wire_ctx_marks_unprunable_coords_alive() {
        use crate::models::SmallCnn;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let model = SmallCnn::new(&mut rng, 8, 10, 3, 4);
        let layout = sparse_layout(&model);
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            mask.set(0, i, false); // kill the whole first prunable layer
        }
        let ctx = wire_ctx(&model, &mask, 7);
        assert_eq!(ctx.epoch, 7);
        assert_eq!(ctx.len(), flat_params(&model).len());
        assert_eq!(
            ctx.segments,
            model.params().iter().map(|p| p.len()).collect::<Vec<_>>()
        );
        // Exactly the pruned prunable coordinates are dead.
        let total_prunable_dead = layout.layer(0).len;
        assert_eq!(ctx.alive_count(), ctx.len() - total_prunable_dead);
    }

    #[test]
    fn bn_stats_wire_size_by_hand() {
        let stats = [
            BnStats {
                mean: vec![0.0; 4],
                var: vec![0.0; 4],
            },
            BnStats {
                mean: vec![0.0; 2],
                var: vec![0.0; 2],
            },
        ];
        let refs: Vec<&BnStats> = stats.iter().collect();
        // 4 (layer count) + per layer: 4 + 4·(mean+var) floats.
        assert_eq!(bn_stats_encoded_len(&refs), 4 + (4 + 32) + (4 + 16));
    }
}
