//! The three architectures used in the paper's evaluation.
//!
//! - [`SmallCnn`] — the 3-convolution dense baseline of Tables IV/V.
//! - [`Vgg11`] — VGG11 with batch normalization.
//! - [`ResNet18`] — the CIFAR-style ResNet18 (3×3 stem, no stem pooling).
//!
//! All models take a *width multiplier* and an input resolution so the same
//! topology runs at paper scale or at laptop/test scale; the layer/block
//! structure (which is what the pruning algorithms operate on) is identical
//! at every scale.

mod resnet;
mod small_cnn;
mod vgg;

pub use resnet::ResNet18;
pub use small_cnn::SmallCnn;
pub use vgg::Vgg11;

/// Scales a channel count by the width multiplier, flooring at 1.
pub(crate) fn scaled(c: usize, width: f32) -> usize {
    ((c as f32 * width).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_floors_at_one() {
        assert_eq!(scaled(64, 1.0), 64);
        assert_eq!(scaled(64, 0.25), 16);
        assert_eq!(scaled(64, 0.001), 1);
        assert_eq!(scaled(3, 2.0), 6);
    }
}
