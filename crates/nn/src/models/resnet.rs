//! CIFAR-style ResNet18.

use super::scaled;
use crate::layer::{BatchNorm2d, BnStats, Conv2d, GlobalAvgPool, Linear, Mode, Relu};
use crate::model::{ArchInfo, LayerArch, Model};
use crate::param::Param;
use ft_tensor::Tensor;
use rand::Rng;

/// One residual basic block: two 3×3 conv-BN pairs with an optional
/// 1×1-conv-BN downsample shortcut.
#[derive(Clone, Debug)]
struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    down: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl BasicBlock {
    #[allow(clippy::too_many_arguments)]
    fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_c: usize,
        out_c: usize,
        stride: usize,
        name: &str,
    ) -> Self {
        let down = if stride != 1 || in_c != out_c {
            Some((
                Conv2d::new(
                    rng,
                    in_c,
                    out_c,
                    1,
                    stride,
                    0,
                    true,
                    &format!("{name}.down"),
                ),
                BatchNorm2d::new(out_c, &format!("{name}.down.bn")),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::new(
                rng,
                in_c,
                out_c,
                3,
                stride,
                1,
                true,
                &format!("{name}.conv1"),
            ),
            bn1: BatchNorm2d::new(out_c, &format!("{name}.bn1")),
            relu1: Relu::new(),
            conv2: Conv2d::new(rng, out_c, out_c, 3, 1, 1, true, &format!("{name}.conv2")),
            bn2: BatchNorm2d::new(out_c, &format!("{name}.bn2")),
            down,
            relu_out: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut main = self.conv1.forward(x, mode);
        main = self.bn1.forward(&main, mode);
        main = self.relu1.forward(&main, mode);
        main = self.conv2.forward(&main, mode);
        main = self.bn2.forward(&main, mode);
        let short = match &mut self.down {
            Some((conv, bn)) => {
                let s = conv.forward(x, mode);
                bn.forward(&s, mode)
            }
            None => x.clone(),
        };
        let sum = main.add(&short);
        self.relu_out.forward(&sum, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad);
        // The addition fans the gradient to both branches.
        let mut g_main = self.bn2.backward(&g_sum);
        g_main = self.conv2.backward(&g_main);
        g_main = self.relu1.backward(&g_main);
        g_main = self.bn1.backward(&g_main);
        let gx_main = self.conv1.backward(&g_main);
        let gx_short = match &mut self.down {
            Some((conv, bn)) => {
                let g = bn.backward(&g_sum);
                conv.backward(&g)
            }
            None => g_sum,
        };
        gx_main.add(&gx_short)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![
            &self.conv1.w,
            &self.bn1.gamma,
            &self.bn1.beta,
            &self.conv2.w,
            &self.bn2.gamma,
            &self.bn2.beta,
        ];
        if let Some((conv, bn)) = &self.down {
            v.extend([&conv.w, &bn.gamma, &bn.beta]);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![
            &mut self.conv1.w,
            &mut self.bn1.gamma,
            &mut self.bn1.beta,
            &mut self.conv2.w,
            &mut self.bn2.gamma,
            &mut self.bn2.beta,
        ];
        if let Some((conv, bn)) = &mut self.down {
            v.push(&mut conv.w);
            v.push(&mut bn.gamma);
            v.push(&mut bn.beta);
        }
        v
    }

    fn bn_stats(&self) -> Vec<&BnStats> {
        let mut v = vec![&self.bn1.stats, &self.bn2.stats];
        if let Some((_, bn)) = &self.down {
            v.push(&bn.stats);
        }
        v
    }

    fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        let mut v = vec![&mut self.bn1.stats, &mut self.bn2.stats];
        if let Some((_, bn)) = &mut self.down {
            v.push(&mut bn.stats);
        }
        v
    }

    fn set_bn_momentum(&mut self, momentum: f32) {
        self.bn1.set_momentum(momentum);
        self.bn2.set_momentum(momentum);
        if let Some((_, bn)) = &mut self.down {
            bn.set_momentum(momentum);
        }
    }

    fn set_sparse_crossover(&mut self, crossover: f32) {
        self.conv1.set_sparse_crossover(crossover);
        self.conv2.set_sparse_crossover(crossover);
        if let Some((conv, _)) = &mut self.down {
            conv.set_sparse_crossover(crossover);
        }
    }

    fn set_runtime(&mut self, rt: ft_runtime::Runtime) {
        self.conv1.set_runtime(rt);
        self.conv2.set_runtime(rt);
        if let Some((conv, _)) = &mut self.down {
            conv.set_runtime(rt);
        }
    }

    fn realized_flops(&self) -> f64 {
        let mut f = self.conv1.realized_flops() + self.conv2.realized_flops();
        if let Some((conv, _)) = &self.down {
            f += conv.realized_flops();
        }
        f
    }

    fn reset_realized_flops(&mut self) {
        self.conv1.reset_realized_flops();
        self.conv2.reset_realized_flops();
        if let Some((conv, _)) = &mut self.down {
            conv.reset_realized_flops();
        }
    }
}

/// CIFAR-style ResNet18: a 3×3 stem (no max-pool), four stages of two
/// basic blocks with channel widths `64·w, 128·w, 256·w, 512·w`, global
/// average pooling and a linear classifier.
///
/// The stem convolution and the classifier are not prunable; the 19
/// convolution weights inside the residual stages are, partitioned into 5
/// blocks (one per stage, the last stage split in two) per Fig. 2.
#[derive(Clone, Debug)]
pub struct ResNet18 {
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: Relu,
    stages: Vec<BasicBlock>, // 8 blocks: 2 per stage
    gap: GlobalAvgPool,
    fc: Linear,
    arch: ArchInfo,
    blocks: Vec<Vec<usize>>,
}

impl ResNet18 {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if `input_size < 8` (three stride-2 stages must fit).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        width: f32,
        classes: usize,
        in_c: usize,
        input_size: usize,
    ) -> Self {
        assert!(
            input_size >= 8,
            "ResNet18 needs input_size >= 8, got {input_size}"
        );
        let c = [
            scaled(64, width),
            scaled(128, width),
            scaled(256, width),
            scaled(512, width),
        ];
        let stem_conv = Conv2d::new(rng, in_c, c[0], 3, 1, 1, false, "stem.conv");
        let stem_bn = BatchNorm2d::new(c[0], "stem.bn");

        let mut stages = Vec::with_capacity(8);
        let mut layers = Vec::new();
        let mut s = input_size;
        layers.push(LayerArch::Conv {
            in_c,
            out_c: c[0],
            kernel: 3,
            out_h: s,
            out_w: s,
            prunable_idx: None,
        });
        layers.push(LayerArch::BatchNorm {
            channels: c[0],
            spatial: s * s,
        });

        let mut prunable_idx = 0usize;
        let mut stage_groups: Vec<Vec<usize>> = Vec::new();
        let mut prev_c = c[0];
        for (stage, &out_c) in c.iter().enumerate() {
            let mut group = Vec::new();
            for b in 0..2 {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                if stride == 2 {
                    s /= 2;
                }
                let name = format!("layer{}.{}", stage + 1, b);
                let block = BasicBlock::new(rng, prev_c, out_c, stride, &name);
                // Arch entries: conv1, conv2, optional downsample.
                layers.push(LayerArch::Conv {
                    in_c: prev_c,
                    out_c,
                    kernel: 3,
                    out_h: s,
                    out_w: s,
                    prunable_idx: Some(prunable_idx),
                });
                group.push(prunable_idx);
                prunable_idx += 1;
                layers.push(LayerArch::BatchNorm {
                    channels: out_c,
                    spatial: s * s,
                });
                layers.push(LayerArch::Conv {
                    in_c: out_c,
                    out_c,
                    kernel: 3,
                    out_h: s,
                    out_w: s,
                    prunable_idx: Some(prunable_idx),
                });
                group.push(prunable_idx);
                prunable_idx += 1;
                layers.push(LayerArch::BatchNorm {
                    channels: out_c,
                    spatial: s * s,
                });
                if block.down.is_some() {
                    layers.push(LayerArch::Conv {
                        in_c: prev_c,
                        out_c,
                        kernel: 1,
                        out_h: s,
                        out_w: s,
                        prunable_idx: Some(prunable_idx),
                    });
                    group.push(prunable_idx);
                    prunable_idx += 1;
                    layers.push(LayerArch::BatchNorm {
                        channels: out_c,
                        spatial: s * s,
                    });
                }
                stages.push(block);
                prev_c = out_c;
            }
            stage_groups.push(group);
        }

        // Fig. 2: five blocks. Stages give four groups; split the last stage
        // into its two residual blocks to obtain five.
        let last = stage_groups.pop().expect("four stages");
        let (a, b) = last.split_at(last.len() / 2);
        stage_groups.push(a.to_vec());
        stage_groups.push(b.to_vec());

        let fc = Linear::new(rng, prev_c, classes, false, "fc");
        layers.push(LayerArch::Linear {
            in_dim: prev_c,
            out_dim: classes,
            prunable_idx: None,
        });

        ResNet18 {
            stem_conv,
            stem_bn,
            stem_relu: Relu::new(),
            stages,
            gap: GlobalAvgPool::new(),
            fc,
            arch: ArchInfo {
                name: "resnet18".into(),
                input: [in_c, input_size, input_size],
                classes,
                layers,
            },
            blocks: stage_groups,
        }
    }
}

impl Model for ResNet18 {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut h = self.stem_conv.forward(x, mode);
        h = self.stem_bn.forward(&h, mode);
        h = self.stem_relu.forward(&h, mode);
        for block in &mut self.stages {
            h = block.forward(&h, mode);
        }
        let pooled = self.gap.forward(&h, mode);
        self.fc.forward(&pooled, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = self.fc.backward(grad_logits);
        g = self.gap.backward(&g);
        for block in self.stages.iter_mut().rev() {
            g = block.backward(&g);
        }
        g = self.stem_relu.backward(&g);
        g = self.stem_bn.backward(&g);
        let _ = self.stem_conv.backward(&g);
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.stem_conv.w, &self.stem_bn.gamma, &self.stem_bn.beta];
        for b in &self.stages {
            v.extend(b.params());
        }
        v.push(&self.fc.w);
        v.push(&self.fc.b);
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![
            &mut self.stem_conv.w,
            &mut self.stem_bn.gamma,
            &mut self.stem_bn.beta,
        ];
        for b in &mut self.stages {
            v.extend(b.params_mut());
        }
        v.push(&mut self.fc.w);
        v.push(&mut self.fc.b);
        v
    }

    fn bn_stats(&self) -> Vec<&BnStats> {
        let mut v = vec![&self.stem_bn.stats];
        for b in &self.stages {
            v.extend(b.bn_stats());
        }
        v
    }

    fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        let mut v = vec![&mut self.stem_bn.stats];
        for b in &mut self.stages {
            v.extend(b.bn_stats_mut());
        }
        v
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn arch(&self) -> ArchInfo {
        self.arch.clone()
    }

    fn block_partition(&self) -> Vec<Vec<usize>> {
        self.blocks.clone()
    }

    fn set_bn_momentum(&mut self, momentum: f32) {
        self.stem_bn.set_momentum(momentum);
        for b in &mut self.stages {
            b.set_bn_momentum(momentum);
        }
    }

    fn set_sparse_crossover(&mut self, crossover: f32) {
        self.stem_conv.set_sparse_crossover(crossover);
        for b in &mut self.stages {
            b.set_sparse_crossover(crossover);
        }
        self.fc.set_sparse_crossover(crossover);
    }

    fn set_runtime(&mut self, rt: ft_runtime::Runtime) {
        self.stem_conv.set_runtime(rt);
        for b in &mut self.stages {
            b.set_runtime(rt);
        }
        self.gap.set_runtime(rt);
        self.fc.set_runtime(rt);
    }

    fn realized_flops(&self) -> f64 {
        self.stem_conv.realized_flops()
            + self
                .stages
                .iter()
                .map(BasicBlock::realized_flops)
                .sum::<f64>()
            + self.fc.realized_flops()
    }

    fn reset_realized_flops(&mut self) {
        self.stem_conv.reset_realized_flops();
        for b in &mut self.stages {
            b.reset_realized_flops();
        }
        self.fc.reset_realized_flops();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::sparse_layout;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_resnet() -> ResNet18 {
        ResNet18::new(&mut ChaCha8Rng::seed_from_u64(5), 0.125, 10, 3, 8)
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = tiny_resnet();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        m.backward(&Tensor::ones(y.shape()));
        assert!(m.params().iter().any(|p| p.grad.max_abs() > 0.0));
    }

    #[test]
    fn has_nineteen_prunable_layers() {
        // 8 blocks x 2 convs + 3 downsample convs = 19.
        let m = tiny_resnet();
        assert_eq!(sparse_layout(&m).num_layers(), 19);
    }

    #[test]
    fn blocks_partition_into_five() {
        let m = tiny_resnet();
        let blocks = m.block_partition();
        assert_eq!(blocks.len(), 5);
        let mut flat: Vec<usize> = blocks.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..19).collect::<Vec<_>>());
    }

    #[test]
    fn downsample_shortcut_exists_per_stage() {
        let m = tiny_resnet();
        let with_down = m.stages.iter().filter(|b| b.down.is_some()).count();
        assert_eq!(with_down, 3, "stages 2-4 begin with a stride-2 block");
    }

    #[test]
    fn full_width_parameter_count_matches_resnet18() {
        // ~11.17M parameters at width 1.0 on 3x32x32/10 classes.
        let m = ResNet18::new(&mut ChaCha8Rng::seed_from_u64(6), 1.0, 10, 3, 32);
        let total: usize = m.params().iter().map(|p| p.len()).sum();
        assert!(
            (11_000_000..11_400_000).contains(&total),
            "got {total} parameters"
        );
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut m = tiny_resnet();
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let y1 = m.forward(&x, Mode::Eval);
        let y2 = m.forward(&x, Mode::Eval);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gradient_flows_to_stem() {
        let mut m = tiny_resnet();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = ft_tensor::normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
        let y = m.forward(&x, Mode::Train);
        m.backward(&Tensor::ones(y.shape()));
        assert!(
            m.stem_conv.w.grad.max_abs() > 0.0,
            "residual paths must reach the stem"
        );
    }
}
