//! The 3-convolution dense baseline of Tables IV and V.

use crate::layer::{
    AnyLayer, BatchNorm2d, BnStats, Conv2d, GlobalAvgPool, Linear, MaxPool2x2, Mode, Relu,
    Sequential,
};
use crate::model::{contiguous_blocks, ArchInfo, LayerArch, Model};
use crate::param::Param;
use ft_tensor::Tensor;
use rand::Rng;

/// A small CNN with three convolution layers (Sec. IV-G): conv-BN-ReLU-pool
/// ×2, conv-BN-ReLU, global average pooling and a linear classifier.
///
/// The paper sizes this model to match a 1%-density ResNet18's parameter
/// count; use [`SmallCnn::new`]'s `width` to hit a parameter target.
#[derive(Clone, Debug)]
pub struct SmallCnn {
    seq: Sequential,
    arch: ArchInfo,
}

impl SmallCnn {
    /// Builds the model.
    ///
    /// `width` is the base channel count (the three convolutions get
    /// `width`, `2·width`, `4·width` channels); `classes` the number of
    /// outputs; `in_c`/`input_size` the input geometry.
    ///
    /// # Panics
    ///
    /// Panics if `input_size < 4` (two 2×2 poolings must fit).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        width: usize,
        classes: usize,
        in_c: usize,
        input_size: usize,
    ) -> Self {
        assert!(
            input_size >= 4,
            "SmallCnn needs input_size >= 4, got {input_size}"
        );
        let (c1, c2, c3) = (width, 2 * width, 4 * width);
        let mut seq = Sequential::new();
        let mut layers = Vec::new();
        let mut s = input_size;

        // Input conv is never prunable (Sec. IV-A2).
        seq.push(AnyLayer::Conv(Conv2d::new(
            rng, in_c, c1, 3, 1, 1, false, "conv1",
        )));
        layers.push(LayerArch::Conv {
            in_c,
            out_c: c1,
            kernel: 3,
            out_h: s,
            out_w: s,
            prunable_idx: None,
        });
        seq.push(AnyLayer::Bn(BatchNorm2d::new(c1, "bn1")));
        layers.push(LayerArch::BatchNorm {
            channels: c1,
            spatial: s * s,
        });
        seq.push(AnyLayer::Relu(Relu::new()));
        seq.push(AnyLayer::MaxPool(MaxPool2x2::new()));
        s /= 2;

        seq.push(AnyLayer::Conv(Conv2d::new(
            rng, c1, c2, 3, 1, 1, true, "conv2",
        )));
        layers.push(LayerArch::Conv {
            in_c: c1,
            out_c: c2,
            kernel: 3,
            out_h: s,
            out_w: s,
            prunable_idx: Some(0),
        });
        seq.push(AnyLayer::Bn(BatchNorm2d::new(c2, "bn2")));
        layers.push(LayerArch::BatchNorm {
            channels: c2,
            spatial: s * s,
        });
        seq.push(AnyLayer::Relu(Relu::new()));
        seq.push(AnyLayer::MaxPool(MaxPool2x2::new()));
        s /= 2;

        seq.push(AnyLayer::Conv(Conv2d::new(
            rng, c2, c3, 3, 1, 1, true, "conv3",
        )));
        layers.push(LayerArch::Conv {
            in_c: c2,
            out_c: c3,
            kernel: 3,
            out_h: s,
            out_w: s,
            prunable_idx: Some(1),
        });
        seq.push(AnyLayer::Bn(BatchNorm2d::new(c3, "bn3")));
        layers.push(LayerArch::BatchNorm {
            channels: c3,
            spatial: s * s,
        });
        seq.push(AnyLayer::Relu(Relu::new()));
        seq.push(AnyLayer::GlobalAvg(GlobalAvgPool::new()));

        // Output layer is never prunable.
        seq.push(AnyLayer::Linear(Linear::new(rng, c3, classes, false, "fc")));
        layers.push(LayerArch::Linear {
            in_dim: c3,
            out_dim: classes,
            prunable_idx: None,
        });

        let arch = ArchInfo {
            name: "small_cnn".into(),
            input: [in_c, input_size, input_size],
            classes,
            layers,
        };
        SmallCnn { seq, arch }
    }
}

impl Model for SmallCnn {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.seq.forward(x, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let _ = self.seq.backward(grad_logits);
    }

    fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        self.seq.forward_into(x, out, mode);
    }

    fn backward_scratch(&mut self, grad_logits: &Tensor) {
        self.seq.backward_discard_input(grad_logits);
    }

    fn params(&self) -> Vec<&Param> {
        self.seq.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.seq.params_mut()
    }

    fn for_each_param(&self, f: &mut dyn FnMut(&Param)) {
        self.seq.for_each_param(f);
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.seq.for_each_param_mut(f);
    }

    fn bn_stats(&self) -> Vec<&BnStats> {
        self.seq.bn_stats()
    }

    fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        self.seq.bn_stats_mut()
    }

    fn for_each_bn_stats(&self, f: &mut dyn FnMut(&BnStats)) {
        self.seq.for_each_bn_stats(f);
    }

    fn for_each_bn_stats_mut(&mut self, f: &mut dyn FnMut(&mut BnStats)) {
        self.seq.for_each_bn_stats_mut(f);
    }

    fn set_bn_momentum(&mut self, momentum: f32) {
        self.seq.set_bn_momentum(momentum);
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn arch(&self) -> ArchInfo {
        self.arch.clone()
    }

    fn block_partition(&self) -> Vec<Vec<usize>> {
        // Only two prunable layers: every granularity degenerates gracefully.
        contiguous_blocks(2, 5)
    }

    fn set_sparse_crossover(&mut self, crossover: f32) {
        self.seq.set_sparse_crossover(crossover);
    }

    fn set_runtime(&mut self, rt: ft_runtime::Runtime) {
        self.seq.set_runtime(rt);
    }

    fn realized_flops(&self) -> f64 {
        self.seq.realized_flops()
    }

    fn reset_realized_flops(&mut self) {
        self.seq.reset_realized_flops();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{flat_params, sparse_layout};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> SmallCnn {
        SmallCnn::new(&mut ChaCha8Rng::seed_from_u64(0), 4, 10, 3, 8)
    }

    #[test]
    fn forward_shapes() {
        let mut m = model();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn backward_runs_and_fills_grads() {
        let mut m = model();
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = m.forward(&x, Mode::Train);
        m.backward(&Tensor::ones(y.shape()));
        let total_grad: f32 = m.params().iter().map(|p| p.grad.max_abs()).sum();
        assert!(total_grad > 0.0);
    }

    #[test]
    fn prunable_layout_is_two_convs() {
        let m = model();
        let layout = sparse_layout(&m);
        assert_eq!(layout.num_layers(), 2);
        assert_eq!(layout.layer(0).len, 8 * 4 * 9); // conv2: [8,4,3,3]
        assert_eq!(layout.layer(1).len, 16 * 8 * 9); // conv3: [16,8,3,3]
    }

    #[test]
    fn clone_is_deep() {
        let m = model();
        let mut c = m.clone_model();
        c.params_mut()[0].data.data_mut()[0] += 1.0;
        assert_ne!(flat_params(&m)[0], flat_params(c.as_ref())[0]);
    }

    #[test]
    fn arch_matches_structure() {
        let m = model();
        let arch = m.arch();
        assert_eq!(arch.name, "small_cnn");
        assert_eq!(arch.input, [3, 8, 8]);
        let convs = arch
            .layers
            .iter()
            .filter(|l| matches!(l, LayerArch::Conv { .. }))
            .count();
        assert_eq!(convs, 3);
    }

    #[test]
    #[should_panic(expected = "input_size")]
    fn rejects_tiny_input() {
        let _ = SmallCnn::new(&mut ChaCha8Rng::seed_from_u64(0), 4, 10, 3, 2);
    }
}
