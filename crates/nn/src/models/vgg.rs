//! VGG11 with batch normalization.

use super::scaled;
use crate::layer::{
    AnyLayer, BatchNorm2d, BnStats, Conv2d, Flatten, Linear, MaxPool2x2, Mode, Relu, Sequential,
};
use crate::model::{ArchInfo, LayerArch, Model};
use crate::param::Param;
use ft_tensor::Tensor;
use rand::Rng;

/// Configuration string of VGG11: channel counts with `None` marking a 2×2
/// max-pool.
const VGG11_CFG: &[Option<usize>] = &[
    Some(64),
    None,
    Some(128),
    None,
    Some(256),
    Some(256),
    None,
    Some(512),
    Some(512),
    None,
    Some(512),
    Some(512),
    None,
];

/// VGG11 with batch normalization, width multiplier and configurable input
/// resolution.
///
/// Deviations from the ImageNet original, documented in `DESIGN.md`:
/// - pooling steps that would shrink the spatial size below 2 are skipped,
///   so the topology also runs on small synthetic inputs;
/// - the classifier is `Linear(512·s² → 512) → ReLU → Linear(512 → classes)`
///   instead of the 4096-wide ImageNet head (CIFAR-style head).
///
/// The first convolution and the final linear layer are not prunable; the
/// remaining 7 convolutions and the hidden classifier linear are, giving 8
/// prunable layers split into the 5 blocks of Fig. 2.
#[derive(Clone, Debug)]
pub struct Vgg11 {
    seq: Sequential,
    arch: ArchInfo,
    blocks: Vec<Vec<usize>>,
}

impl Vgg11 {
    /// Builds VGG11-BN.
    ///
    /// # Panics
    ///
    /// Panics if `input_size == 0`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        width: f32,
        classes: usize,
        in_c: usize,
        input_size: usize,
    ) -> Self {
        assert!(input_size > 0, "input_size must be positive");
        let mut seq = Sequential::new();
        let mut layers = Vec::new();
        let mut s = input_size;
        let mut prev_c = in_c;
        let mut prunable_idx = 0usize;
        let mut conv_count = 0usize;
        // Prunable-layer indices grouped by pooling stage → Fig. 2 blocks.
        let mut stage_groups: Vec<Vec<usize>> = vec![Vec::new()];

        for item in VGG11_CFG {
            match item {
                Some(c) => {
                    let out_c = scaled(*c, width);
                    conv_count += 1;
                    let prunable = conv_count > 1; // first conv = input layer
                    let name = format!("features.conv{conv_count}");
                    seq.push(AnyLayer::Conv(Conv2d::new(
                        rng, prev_c, out_c, 3, 1, 1, prunable, &name,
                    )));
                    let idx = if prunable {
                        let i = prunable_idx;
                        prunable_idx += 1;
                        stage_groups.last_mut().expect("nonempty").push(i);
                        Some(i)
                    } else {
                        None
                    };
                    layers.push(LayerArch::Conv {
                        in_c: prev_c,
                        out_c,
                        kernel: 3,
                        out_h: s,
                        out_w: s,
                        prunable_idx: idx,
                    });
                    seq.push(AnyLayer::Bn(BatchNorm2d::new(out_c, &format!("{name}.bn"))));
                    layers.push(LayerArch::BatchNorm {
                        channels: out_c,
                        spatial: s * s,
                    });
                    seq.push(AnyLayer::Relu(Relu::new()));
                    prev_c = out_c;
                }
                None => {
                    if s >= 2 {
                        seq.push(AnyLayer::MaxPool(MaxPool2x2::new()));
                        s /= 2;
                    }
                    stage_groups.push(Vec::new());
                }
            }
        }

        seq.push(AnyLayer::Flatten(Flatten::new()));
        let feat = prev_c * s * s;
        let hidden = scaled(512, width);
        // Hidden classifier layer is prunable; the output layer is not.
        seq.push(AnyLayer::Linear(Linear::new(
            rng,
            feat,
            hidden,
            true,
            "classifier.fc1",
        )));
        let fc1_idx = prunable_idx;
        prunable_idx += 1;
        stage_groups.last_mut().expect("nonempty").push(fc1_idx);
        layers.push(LayerArch::Linear {
            in_dim: feat,
            out_dim: hidden,
            prunable_idx: Some(fc1_idx),
        });
        seq.push(AnyLayer::Relu(Relu::new()));
        seq.push(AnyLayer::Linear(Linear::new(
            rng,
            hidden,
            classes,
            false,
            "classifier.fc2",
        )));
        layers.push(LayerArch::Linear {
            in_dim: hidden,
            out_dim: classes,
            prunable_idx: None,
        });

        let blocks: Vec<Vec<usize>> = stage_groups.into_iter().filter(|g| !g.is_empty()).collect();
        debug_assert_eq!(blocks.iter().map(Vec::len).sum::<usize>(), prunable_idx);

        Vgg11 {
            seq,
            arch: ArchInfo {
                name: "vgg11".into(),
                input: [in_c, input_size, input_size],
                classes,
                layers,
            },
            blocks,
        }
    }
}

impl Model for Vgg11 {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.seq.forward(x, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let _ = self.seq.backward(grad_logits);
    }

    fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        self.seq.forward_into(x, out, mode);
    }

    fn backward_scratch(&mut self, grad_logits: &Tensor) {
        self.seq.backward_discard_input(grad_logits);
    }

    fn params(&self) -> Vec<&Param> {
        self.seq.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.seq.params_mut()
    }

    fn for_each_param(&self, f: &mut dyn FnMut(&Param)) {
        self.seq.for_each_param(f);
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.seq.for_each_param_mut(f);
    }

    fn bn_stats(&self) -> Vec<&BnStats> {
        self.seq.bn_stats()
    }

    fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        self.seq.bn_stats_mut()
    }

    fn for_each_bn_stats(&self, f: &mut dyn FnMut(&BnStats)) {
        self.seq.for_each_bn_stats(f);
    }

    fn for_each_bn_stats_mut(&mut self, f: &mut dyn FnMut(&mut BnStats)) {
        self.seq.for_each_bn_stats_mut(f);
    }

    fn set_bn_momentum(&mut self, momentum: f32) {
        self.seq.set_bn_momentum(momentum);
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn arch(&self) -> ArchInfo {
        self.arch.clone()
    }

    fn block_partition(&self) -> Vec<Vec<usize>> {
        self.blocks.clone()
    }

    fn set_sparse_crossover(&mut self, crossover: f32) {
        self.seq.set_sparse_crossover(crossover);
    }

    fn set_runtime(&mut self, rt: ft_runtime::Runtime) {
        self.seq.set_runtime(rt);
    }

    fn realized_flops(&self) -> f64 {
        self.seq.realized_flops()
    }

    fn reset_realized_flops(&mut self) {
        self.seq.reset_realized_flops();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::sparse_layout;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_vgg() -> Vgg11 {
        Vgg11::new(&mut ChaCha8Rng::seed_from_u64(1), 0.125, 10, 3, 16)
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = small_vgg();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        m.backward(&Tensor::ones(y.shape()));
    }

    #[test]
    fn has_eight_prunable_layers() {
        let m = small_vgg();
        // 7 prunable convs + hidden classifier linear.
        assert_eq!(sparse_layout(&m).num_layers(), 8);
    }

    #[test]
    fn blocks_partition_all_prunable_layers() {
        let m = small_vgg();
        let blocks = m.block_partition();
        assert_eq!(blocks.len(), 5, "Fig. 2: five blocks");
        let mut flat: Vec<usize> = blocks.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_skipping_keeps_tiny_inputs_alive() {
        // 8×8 input: only 3 of the 5 pools can execute (8→4→2→1).
        let mut m = Vgg11::new(&mut ChaCha8Rng::seed_from_u64(2), 0.125, 10, 3, 8);
        let y = m.forward(&Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn full_width_channel_counts() {
        let m = Vgg11::new(&mut ChaCha8Rng::seed_from_u64(3), 1.0, 10, 3, 32);
        let convs: Vec<usize> = m
            .arch()
            .layers
            .iter()
            .filter_map(|l| match l {
                LayerArch::Conv { out_c, .. } => Some(*out_c),
                _ => None,
            })
            .collect();
        assert_eq!(convs, vec![64, 128, 256, 256, 512, 512, 512, 512]);
    }
}
