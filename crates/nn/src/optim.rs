//! Stochastic gradient descent with mask-aware updates.

use crate::model::{mask_grads, Model};
use ft_sparse::Mask;
use serde::{Deserialize, Serialize};

/// SGD hyperparameters.
///
/// Momentum and weight decay default to the values used throughout the
/// paper's experiments (plain SGD, no decay); both knobs exist because the
/// ablation benches exercise them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate `η`.
    pub lr: f32,
    /// Classical momentum coefficient; 0 disables momentum.
    pub momentum: f32,
    /// L2 weight decay; 0 disables it.
    pub weight_decay: f32,
    /// Global gradient-norm clip; 0 disables clipping.
    pub clip_norm: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: 0.0,
        }
    }
}

/// SGD optimizer state (velocity buffers when momentum is enabled).
#[derive(Clone, Debug, Default)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer with the given configuration.
    pub fn new(cfg: SgdConfig) -> Self {
        Sgd {
            cfg,
            velocity: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SgdConfig {
        self.cfg
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Re-arms the optimizer with a fresh configuration and zeroed velocity,
    /// keeping the velocity buffers allocated. Equivalent to replacing the
    /// optimizer with `Sgd::new(cfg)` but allocation-free, which is how the
    /// per-device trainer cache starts each local round.
    pub fn reset_with(&mut self, cfg: SgdConfig) {
        self.cfg = cfg;
        for v in &mut self.velocity {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// One SGD step. When `mask` is given, the gradients of pruned weights
    /// are zeroed first (Eq. 5: `θ ← θ − η ∇L ⊙ m`), so pruned weights stay
    /// exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not match the model's prunable layout.
    pub fn step(&mut self, model: &mut dyn Model, mask: Option<&Mask>) {
        if let Some(m) = mask {
            mask_grads(model, m);
        }
        if self.cfg.clip_norm > 0.0 {
            clip_gradients(model, self.cfg.clip_norm);
        }
        let cfg = self.cfg;
        let velocity = &mut self.velocity;
        let mut i = 0;
        model.for_each_param_mut(&mut |p| {
            if cfg.momentum > 0.0 {
                if velocity.len() <= i {
                    velocity.push(vec![0.0; p.len()]);
                } else if velocity[i].len() != p.len() {
                    velocity[i].clear();
                    velocity[i].resize(p.len(), 0.0);
                }
                let vel = &mut velocity[i];
                for ((w, g), v) in p
                    .data
                    .data_mut()
                    .iter_mut()
                    .zip(p.grad.data().iter())
                    .zip(vel.iter_mut())
                {
                    let grad = g + cfg.weight_decay * *w;
                    *v = cfg.momentum * *v + grad;
                    *w -= cfg.lr * *v;
                }
            } else {
                for (w, g) in p.data.data_mut().iter_mut().zip(p.grad.data().iter()) {
                    *w -= cfg.lr * (g + cfg.weight_decay * *w);
                }
            }
            i += 1;
        });
    }
}

/// Scales all gradients so their global L2 norm does not exceed `max_norm`.
fn clip_gradients(model: &mut dyn Model, max_norm: f32) {
    let mut total = 0.0f32;
    model.for_each_param(&mut |p| total += p.grad.data().iter().map(|g| g * g).sum::<f32>());
    let norm = total.sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        model.for_each_param_mut(&mut |p| p.grad.scale(scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::loss::softmax_cross_entropy;
    use crate::model::{apply_mask, sparse_layout, Model};
    use crate::models::SmallCnn;
    use ft_sparse::Mask;
    use ft_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (SmallCnn, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let model = SmallCnn::new(&mut rng, 4, 4, 3, 8);
        let x = ft_tensor::normal(&mut rng, &[8, 3, 8, 8], 0.0, 1.0);
        let y = vec![0, 1, 2, 3, 0, 1, 2, 3];
        (model, x, y)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut model, x, y) = setup();
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            ..Default::default()
        });
        let logits = model.forward(&x, Mode::Train);
        let (loss0, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        opt.step(&mut model, None);
        model.zero_grad();
        let mut last = loss0;
        for _ in 0..10 {
            let logits = model.forward(&x, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(&mut model, None);
            model.zero_grad();
            last = loss;
        }
        assert!(last < loss0, "loss did not decrease: {loss0} -> {last}");
    }

    #[test]
    fn masked_step_keeps_pruned_weights_zero() {
        let (mut model, x, y) = setup();
        let layout = sparse_layout(&model);
        let mut mask = Mask::ones(&layout);
        // Prune half of the first prunable layer.
        for i in 0..layout.layer(0).len / 2 {
            mask.set(0, i, false);
        }
        apply_mask(&mut model, &mask);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..3 {
            let logits = model.forward(&x, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(&mut model, Some(&mask));
            model.zero_grad();
        }
        let prunable: Vec<&crate::Param> =
            model.params().into_iter().filter(|p| p.prunable).collect();
        for i in 0..layout.layer(0).len / 2 {
            assert_eq!(prunable[0].data.data()[i], 0.0, "pruned weight {i} moved");
        }
        // Alive weights did move.
        assert!(prunable[0].data.data()[layout.layer(0).len - 1] != 0.0);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        // With constant grad g, momentum accumulates: after 2 steps the
        // parameter moved further than 2 * lr * g.
        let (mut model, x, y) = setup();
        let w0 = model.params()[0].data.data()[0];
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            ..Default::default()
        });
        for _ in 0..3 {
            let logits = model.forward(&x, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(&mut model, None);
            model.zero_grad();
        }
        assert_ne!(model.params()[0].data.data()[0], w0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut model, _, _) = setup();
        let norm0: f32 = model.params().iter().map(|p| p.data.norm2()).sum();
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..Default::default()
        });
        // No forward/backward: gradients are zero, so only decay acts.
        for _ in 0..5 {
            opt.step(&mut model, None);
        }
        let norm1: f32 = model.params().iter().map(|p| p.data.norm2()).sum();
        assert!(norm1 < norm0);
    }
}
