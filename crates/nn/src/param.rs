//! Learnable parameters with gradient accumulators and pruning metadata.

use ft_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// What role a parameter plays in the network.
///
/// Pruning in the paper targets convolution and linear *weights* only; BN
/// affine parameters and biases are never pruned (Sec. IV-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Convolution kernel weights `[out_c, in_c, k, k]`.
    ConvWeight,
    /// Fully-connected weights `[out, in]`.
    LinearWeight,
    /// Bias vector of a convolution or linear layer.
    Bias,
    /// BatchNorm scale (`γ`).
    BnGamma,
    /// BatchNorm shift (`β`).
    BnBeta,
}

/// A learnable tensor together with its gradient accumulator.
///
/// `prunable` marks whether this parameter participates in masks; the model
/// constructors set it (`true` for conv/linear weights except the input and
/// output layers).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub data: Tensor,
    /// Gradient accumulator, same shape as `data`. Zeroed by
    /// [`Param::zero_grad`].
    pub grad: Tensor,
    /// Role of the parameter.
    pub kind: ParamKind,
    /// Whether masks apply to this parameter.
    pub prunable: bool,
    /// Diagnostic name, e.g. `"features.3.conv.w"`.
    pub name: String,
    /// The most recently applied mask layer (`None` until a mask is applied).
    /// The sparse execution dispatch reads this to build CSR structure; the
    /// bits — not the current zero pattern of `data` — define which
    /// coordinates stay live, so freshly grown (still-zero) weights keep
    /// receiving gradient.
    pub mask_bits: Option<Vec<bool>>,
    /// Bumped every time a mask is applied. Layers cache their CSR structure
    /// keyed on this epoch and repack only when it changes.
    pub mask_epoch: u64,
    /// Number of live bits in `mask_bits` (cached so the per-forward density
    /// check is O(1)); meaningless while `mask_bits` is `None`.
    pub mask_alive: usize,
}

impl Param {
    /// Wraps an initialized tensor as a parameter with a zeroed gradient.
    pub fn new(data: Tensor, kind: ParamKind, prunable: bool, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(data.shape());
        Param {
            data,
            grad,
            kind,
            prunable,
            name: name.into(),
            mask_bits: None,
            mask_epoch: 0,
            mask_alive: 0,
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.data.numel()
    }

    /// Whether the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Records the mask layer that was just applied to this parameter and
    /// bumps the mask epoch (invalidating cached CSR structure).
    ///
    /// Re-applying the bits already recorded is a no-op: the epoch stays
    /// put, so layers keep their cached CSR structure, and nothing is
    /// copied — federated rounds re-assert an unchanged mask every round.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not have one entry per scalar.
    pub fn note_mask(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.len(), "mask bits length mismatch");
        match &mut self.mask_bits {
            Some(prev) if prev.as_slice() == bits => return,
            Some(prev) => {
                prev.clear();
                prev.extend_from_slice(bits);
            }
            None => self.mask_bits = Some(bits.to_vec()),
        }
        self.mask_alive = bits.iter().filter(|&&b| b).count();
        self.mask_epoch += 1;
    }

    /// Density of the most recently applied mask (1.0 when unmasked). O(1).
    pub fn mask_density(&self) -> f32 {
        match &self.mask_bits {
            Some(bits) if !bits.is_empty() => self.mask_alive as f32 / bits.len() as f32,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 2]), ParamKind::LinearWeight, true, "w");
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[3]), ParamKind::Bias, false, "b");
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 3]);
    }

    #[test]
    fn note_mask_bumps_epoch_and_tracks_density() {
        let mut p = Param::new(Tensor::ones(&[4]), ParamKind::LinearWeight, true, "w");
        assert_eq!(p.mask_epoch, 0);
        assert_eq!(p.mask_density(), 1.0);
        p.note_mask(&[true, false, false, true]);
        assert_eq!(p.mask_epoch, 1);
        assert!((p.mask_density() - 0.5).abs() < 1e-6);
        p.note_mask(&[true, true, true, true]);
        assert_eq!(p.mask_epoch, 2);
        assert_eq!(p.mask_density(), 1.0);
    }
}
