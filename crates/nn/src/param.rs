//! Learnable parameters with gradient accumulators and pruning metadata.

use ft_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// What role a parameter plays in the network.
///
/// Pruning in the paper targets convolution and linear *weights* only; BN
/// affine parameters and biases are never pruned (Sec. IV-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Convolution kernel weights `[out_c, in_c, k, k]`.
    ConvWeight,
    /// Fully-connected weights `[out, in]`.
    LinearWeight,
    /// Bias vector of a convolution or linear layer.
    Bias,
    /// BatchNorm scale (`γ`).
    BnGamma,
    /// BatchNorm shift (`β`).
    BnBeta,
}

/// A learnable tensor together with its gradient accumulator.
///
/// `prunable` marks whether this parameter participates in masks; the model
/// constructors set it (`true` for conv/linear weights except the input and
/// output layers).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub data: Tensor,
    /// Gradient accumulator, same shape as `data`. Zeroed by
    /// [`Param::zero_grad`].
    pub grad: Tensor,
    /// Role of the parameter.
    pub kind: ParamKind,
    /// Whether masks apply to this parameter.
    pub prunable: bool,
    /// Diagnostic name, e.g. `"features.3.conv.w"`.
    pub name: String,
}

impl Param {
    /// Wraps an initialized tensor as a parameter with a zeroed gradient.
    pub fn new(data: Tensor, kind: ParamKind, prunable: bool, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(data.shape());
        Param {
            data,
            grad,
            kind,
            prunable,
            name: name.into(),
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.data.numel()
    }

    /// Whether the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 2]), ParamKind::LinearWeight, true, "w");
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[3]), ParamKind::Bias, false, "b");
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 3]);
    }
}
