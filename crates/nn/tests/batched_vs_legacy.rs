//! Property tests pinning the batched training engine to the retired
//! per-sample semantics, bit for bit.
//!
//! The engine's contract (see ARCHITECTURE.md, "Training engine") is that a
//! whole-batch forward/backward is *exactly* `==` to running the same layer
//! one sample at a time and accumulating — not merely close: golden traces
//! and the federated aggregation paths compare checkpoints byte-wise. The
//! per-sample reference here is the layer itself driven at `n = 1` (a
//! single-sample batch degenerates to the legacy composition: one im2col,
//! one GEMM per pass, one gradient accumulation per sample), so the
//! property fails if batching, k-segmentation, or the fused eval pack ever
//! reorders a floating-point reduction.
//!
//! Geometries are adversarial: kernels bigger than the padded input are
//! filtered out, but everything else — odd spatial dims, stride > kernel,
//! pad ≥ kernel, single-channel and single-sample degenerates — is fair
//! game, across dense and sparse (CSR-dispatched) weights and 1- vs
//! 4-thread runtimes.

use ft_nn::{Conv2d, Linear, Mode, Relu, Runtime};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random tensor data in [-1, 1).
fn rand_vec(rng: &mut ChaCha8Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Masks roughly 70% of the weight away (keeping at least one alive) and
/// forces the sparse dispatch by lifting the crossover to 1.0.
fn sparsify_conv(layer: &mut Conv2d, rng: &mut ChaCha8Rng) {
    let n = layer.w.len();
    let mut bits: Vec<bool> = (0..n).map(|_| rng.gen_range(0.0f32..1.0) < 0.3).collect();
    bits[0] = true;
    for (v, &b) in layer.w.data.data_mut().iter_mut().zip(bits.iter()) {
        if !b {
            *v = 0.0;
        }
    }
    layer.w.note_mask(&bits);
    layer.set_sparse_crossover(1.0);
}

fn sparsify_linear(layer: &mut Linear, rng: &mut ChaCha8Rng) {
    let n = layer.w.len();
    let mut bits: Vec<bool> = (0..n).map(|_| rng.gen_range(0.0f32..1.0) < 0.3).collect();
    bits[0] = true;
    for (v, &b) in layer.w.data.data_mut().iter_mut().zip(bits.iter()) {
        if !b {
            *v = 0.0;
        }
    }
    layer.w.note_mask(&bits);
    layer.set_sparse_crossover(1.0);
}

/// Batch sizes exercised: the degenerate single sample, the smallest true
/// batch, and one that is not a multiple of any blocking factor.
fn batch_sizes() -> impl Strategy<Value = usize> {
    (0usize..3).prop_map(|i| [1, 2, 7][i])
}

/// Near-equality for reductions whose accumulation order legitimately
/// differs between the batched and per-sample compositions (Linear's dW
/// reduces over the batch axis inside one GEMM; per-sample calls round into
/// the accumulator after every sample). A couple of ulps at these
/// magnitudes.
fn assert_close(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        let tol = 1e-5f32 * x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol, "index {i}: {x} vs {y} (tol {tol})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_batched_matches_per_sample(
        geom in (1usize..=4, 1usize..=5, 1usize..=3, 1usize..=3, 0usize..=2),
        dims in (3usize..=11, 3usize..=11),
        n in batch_sizes(),
        sparse in 0usize..2,
        seed in 0u64..1000,
    ) {
        let (in_c, out_c, kernel, stride, pad) = geom;
        let (h, w) = dims;
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Conv2d::new(&mut rng, in_c, out_c, kernel, stride, pad, true, "c");
        if sparse == 1 {
            sparsify_conv(&mut batched, &mut rng);
        }
        let mut per_sample = batched.clone();
        let mut threaded = batched.clone();
        threaded.set_runtime(Runtime::exact(4));
        let mut fused_eval = batched.clone();

        let x = ft_tensor::Tensor::from_vec(
            rand_vec(&mut rng, n * in_c * h * w),
            &[n, in_c, h, w],
        );
        let out = batched.forward(&x, Mode::Train);
        let go = ft_tensor::Tensor::from_vec(
            rand_vec(&mut rng, out.numel()),
            out.shape(),
        );
        let gx = batched.backward(&go);

        // The fused implicit-GEMM eval path reads the same packed values in
        // the same kernel order as the materialized train path.
        let out_eval = fused_eval.forward(&x, Mode::Eval);
        prop_assert_eq!(out_eval.data(), out.data());

        // 4 worker threads must be byte-identical to sequential.
        let out_t = threaded.forward(&x, Mode::Train);
        let gx_t = threaded.backward(&go);
        prop_assert_eq!(out_t.data(), out.data());
        prop_assert_eq!(gx_t.data(), gx.data());
        prop_assert_eq!(threaded.w.grad.data(), batched.w.grad.data());

        // Per-sample composition: forward + backward one sample at a time,
        // parameter gradients accumulating across calls in sample order.
        let sample_in = in_c * h * w;
        let sample_out = out.numel() / n;
        for i in 0..n {
            let xi = ft_tensor::Tensor::from_vec(
                x.data()[i * sample_in..(i + 1) * sample_in].to_vec(),
                &[1, in_c, h, w],
            );
            let oi = per_sample.forward(&xi, Mode::Train);
            prop_assert_eq!(oi.data(), &out.data()[i * sample_out..(i + 1) * sample_out]);
            let goi = ft_tensor::Tensor::from_vec(
                go.data()[i * sample_out..(i + 1) * sample_out].to_vec(),
                oi.shape(),
            );
            let gi = per_sample.backward(&goi);
            prop_assert_eq!(gi.data(), &gx.data()[i * sample_in..(i + 1) * sample_in]);
        }
        prop_assert_eq!(per_sample.w.grad.data(), batched.w.grad.data());
    }

    #[test]
    fn linear_batched_matches_per_sample(
        dims in (1usize..=9, 1usize..=6),
        n in batch_sizes(),
        sparse in 0usize..2,
        seed in 0u64..1000,
    ) {
        let (in_dim, out_dim) = dims;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Linear::new(&mut rng, in_dim, out_dim, true, "fc");
        if sparse == 1 {
            sparsify_linear(&mut batched, &mut rng);
        }
        let mut per_sample = batched.clone();
        let mut threaded = batched.clone();
        threaded.set_runtime(Runtime::exact(4));

        let x = ft_tensor::Tensor::from_vec(rand_vec(&mut rng, n * in_dim), &[n, in_dim]);
        let out = batched.forward(&x, Mode::Train);
        let go = ft_tensor::Tensor::from_vec(rand_vec(&mut rng, out.numel()), out.shape());
        let gx = batched.backward(&go);

        let out_t = threaded.forward(&x, Mode::Train);
        let gx_t = threaded.backward(&go);
        prop_assert_eq!(out_t.data(), out.data());
        prop_assert_eq!(gx_t.data(), gx.data());
        prop_assert_eq!(threaded.w.grad.data(), batched.w.grad.data());
        prop_assert_eq!(threaded.b.grad.data(), batched.b.grad.data());

        for i in 0..n {
            let xi = ft_tensor::Tensor::from_vec(
                x.data()[i * in_dim..(i + 1) * in_dim].to_vec(),
                &[1, in_dim],
            );
            let oi = per_sample.forward(&xi, Mode::Train);
            prop_assert_eq!(oi.data(), &out.data()[i * out_dim..(i + 1) * out_dim]);
            let goi = ft_tensor::Tensor::from_vec(
                go.data()[i * out_dim..(i + 1) * out_dim].to_vec(),
                &[1, out_dim],
            );
            let gi = per_sample.backward(&goi);
            prop_assert_eq!(gi.data(), &gx.data()[i * in_dim..(i + 1) * in_dim]);
        }
        // The retired engine already fed Linear whole batches, so batched dW
        // (one GEMM reduction over n) IS the legacy semantics; the per-sample
        // composition rounds into the accumulator after every sample and may
        // differ in the last ulp. Pin it near-equal; bias sums row-by-row in
        // the same order either way, so it stays exact.
        assert_close(per_sample.w.grad.data(), batched.w.grad.data());
        prop_assert_eq!(per_sample.b.grad.data(), batched.b.grad.data());
    }

    /// ReLU's arena-cached mask must behave per-sample too (regression guard
    /// for the branchless backward rewrite).
    #[test]
    fn relu_batched_matches_per_sample(
        len in 1usize..=64,
        n in batch_sizes(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Relu::new();
        let mut per_sample = Relu::new();
        let x = ft_tensor::Tensor::from_vec(rand_vec(&mut rng, n * len), &[n, len]);
        let out = batched.forward(&x, Mode::Train);
        let go = ft_tensor::Tensor::from_vec(rand_vec(&mut rng, out.numel()), out.shape());
        let gx = batched.backward(&go);
        for i in 0..n {
            let xi = ft_tensor::Tensor::from_vec(
                x.data()[i * len..(i + 1) * len].to_vec(),
                &[1, len],
            );
            let oi = per_sample.forward(&xi, Mode::Train);
            prop_assert_eq!(oi.data(), &out.data()[i * len..(i + 1) * len]);
            let goi = ft_tensor::Tensor::from_vec(
                go.data()[i * len..(i + 1) * len].to_vec(),
                &[1, len],
            );
            let gi = per_sample.backward(&goi);
            prop_assert_eq!(gi.data(), &gx.data()[i * len..(i + 1) * len]);
        }
    }
}
