//! Pruning-at-initialization mask constructors: SNIP, SynFlow, FL-PQSU.
//!
//! These all run *on the server* before federated training starts
//! (Sec. IV-A3): SNIP uses the public one-shot dataset `D_s`, SynFlow is
//! data-free, FL-PQSU ranks by L1 norm of the (random) initial weights.

use ft_data::Dataset;
use ft_nn::loss::softmax_cross_entropy;
use ft_nn::{prunable_param_indices, sparse_layout, Mode, Model};
use ft_sparse::{magnitude_mask, uniform_density_vector, Mask, SparseLayout, TopKBuffer};
use ft_tensor::Tensor;

/// Number of iterative pruning steps for SNIP/SynFlow. The paper uses 100
/// epochs; scores stabilize long before that at our scale, so the default is
/// smaller but the functions accept any count.
pub const DEFAULT_ITERATIVE_STEPS: usize = 10;

/// FL-PQSU's pruning stage: one-shot L1-norm (magnitude) pruning with a
/// uniform layer-wise density, applied to the initial weights on the server.
pub fn l1_oneshot_mask(model: &dyn Model, d_target: f32) -> Mask {
    let layout = sparse_layout(model);
    let params = model.params();
    let weights: Vec<&[f32]> = params
        .iter()
        .filter(|p| p.prunable)
        .map(|p| p.data.data())
        .collect();
    magnitude_mask(
        &layout,
        &weights,
        &uniform_density_vector(&layout, d_target),
    )
}

/// SNIP: iterative connection-sensitivity pruning on the server's public
/// dataset. Scores are `|g ⊙ w|` with a *global* ranking across layers —
/// which is exactly what makes SNIP collapse entire layers at extreme
/// sparsity (the failure mode Fig. 3 shows).
///
/// # Panics
///
/// Panics if `public` is empty or `steps == 0`.
pub fn snip_mask(model: &dyn Model, public: &Dataset, d_target: f32, steps: usize) -> Mask {
    assert!(!public.is_empty(), "SNIP needs a public dataset");
    assert!(steps > 0, "need at least one pruning step");
    let layout = sparse_layout(model);
    let mut mask = Mask::ones(&layout);
    for step in 1..=steps {
        let d_step = step_density(d_target, step, steps);
        let mut probe = model.clone_model();
        ft_nn::apply_mask(probe.as_mut(), &mask);
        let (x, y) = public.full_batch();
        let logits = probe.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        probe.backward(&grad);
        let scores = saliency_scores(probe.as_ref(), &mask);
        mask = global_topk_mask(&layout, &scores, d_step);
    }
    mask
}

/// SynFlow: iterative, data-free synaptic-flow pruning. The probe model
/// takes absolute values of all parameters, neutral BN statistics, and a
/// forward pass on an all-ones input; the objective is the sum of logits and
/// scores are `|∂R/∂w ⊙ w|`. Per-iteration *global* ranking with an
/// exponential density schedule, which preserves layer connectivity.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn synflow_mask(model: &dyn Model, d_target: f32, steps: usize) -> Mask {
    assert!(steps > 0, "need at least one pruning step");
    let layout = sparse_layout(model);
    let [c, h, w] = model.arch().input;
    let mut mask = Mask::ones(&layout);
    for step in 1..=steps {
        let d_step = step_density(d_target, step, steps);
        let mut probe = model.clone_model();
        // Linearize: |params|, β = 0, neutral running statistics, Eval mode.
        for p in probe.params_mut() {
            match p.kind {
                ft_nn::ParamKind::BnBeta | ft_nn::ParamKind::Bias => p.data.fill_zero(),
                _ => p.data.map_in_place(f32::abs),
            }
        }
        for stats in probe.bn_stats_mut() {
            stats.mean.iter_mut().for_each(|m| *m = 0.0);
            stats.var.iter_mut().for_each(|v| *v = 1.0);
        }
        ft_nn::apply_mask(probe.as_mut(), &mask);
        // Eval mode: BN is the affine map `|γ|·x̂` with neutral statistics,
        // so synaptic flow is preserved (Train-mode batch statistics would
        // cancel the gradient of constant channels exactly).
        let ones = Tensor::ones(&[1, c, h, w]);
        let logits = probe.forward(&ones, Mode::Eval);
        // R = Σ logits ⇒ grad_logits = 1.
        probe.backward(&Tensor::ones(logits.shape()));
        let scores = saliency_scores(probe.as_ref(), &mask);
        mask = global_topk_mask(&layout, &scores, d_step);
    }
    mask
}

/// GraSP (Wang et al., ICLR 2020): prunes the weights whose removal *least
/// reduces gradient flow* after pruning. Scores are `s_i = -w_i (H g)_i`
/// with the Hessian–gradient product approximated by finite differences,
/// `Hg ≈ (∇L(w + εg) − ∇L(w)) / ε`; the **highest**-scoring weights are
/// pruned (low score = keep).
///
/// Not part of the paper's evaluated baselines (it is cited as related
/// work); provided as an extension with the same server-side at-init
/// interface as SNIP.
///
/// # Panics
///
/// Panics if `public` is empty.
pub fn grasp_mask(model: &dyn Model, public: &Dataset, d_target: f32) -> Mask {
    assert!(!public.is_empty(), "GraSP needs a public dataset");
    let layout = sparse_layout(model);
    let (x, y) = public.full_batch();

    // Pass 1: gradient at w.
    let mut probe1 = model.clone_model();
    let logits = probe1.forward(&x, Mode::Train);
    let (_, grad) = softmax_cross_entropy(&logits, &y);
    probe1.backward(&grad);
    let g1: Vec<Vec<f32>> = probe1
        .params()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect();

    // Pass 2: gradient at w + εg (same batch).
    let eps = {
        let gnorm: f32 = g1
            .iter()
            .flat_map(|g| g.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt();
        if gnorm > 0.0 {
            1e-2 / gnorm
        } else {
            1e-2
        }
    };
    let mut probe2 = model.clone_model();
    for (p, g) in probe2.params_mut().into_iter().zip(g1.iter()) {
        for (w, &gv) in p.data.data_mut().iter_mut().zip(g.iter()) {
            *w += eps * gv;
        }
    }
    let logits = probe2.forward(&x, Mode::Train);
    let (_, grad) = softmax_cross_entropy(&logits, &y);
    probe2.backward(&grad);

    // Keep the lowest s_i = -w_i (Hg)_i, i.e. prune the largest. We rank by
    // the negated score through the magnitude-agnostic path below.
    let pos = prunable_param_indices(model);
    let params = model.params();
    let params2 = probe2.params();
    // Count of weights to keep globally.
    let total = layout.total_len();
    let keep = (((d_target as f64) * total as f64).ceil() as usize).min(total);
    // Collect (flat index, score); keep the `keep` smallest scores.
    let mut scored: Vec<(usize, f32)> = Vec::with_capacity(total);
    let mut offset = 0usize;
    for &pi in pos.iter() {
        let w = params[pi].data.data();
        let g_before = &g1[pi];
        let g_after = params2[pi].grad.data();
        for i in 0..w.len() {
            let hg = (g_after[i] - g_before[i]) / eps;
            scored.push((offset + i, -w[i] * hg));
        }
        offset += w.len();
    }
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(keep);

    let mut layers: Vec<Vec<bool>> = layout.iter().map(|s| vec![false; s.len]).collect();
    let lens = layout.lens();
    for (flat, _) in scored {
        let mut rem = flat;
        for (l, &n) in lens.iter().enumerate() {
            if rem < n {
                layers[l][rem] = true;
                break;
            }
            rem -= n;
        }
    }
    Mask::from_layers(layers)
}

/// Exponential density schedule `d_step = d_target^(step/steps)` used by the
/// iterative at-init pruners (Tanaka et al.).
fn step_density(d_target: f32, step: usize, steps: usize) -> f32 {
    d_target.powf(step as f32 / steps as f32)
}

/// `|g ⊙ w|` per prunable layer; pruned coordinates score 0 so they stay
/// pruned under global ranking.
fn saliency_scores(model: &dyn Model, mask: &Mask) -> Vec<Vec<f32>> {
    let pos = prunable_param_indices(model);
    let params = model.params();
    pos.iter()
        .enumerate()
        .map(|(l, &pi)| {
            let w = params[pi].data.data();
            let g = params[pi].grad.data();
            w.iter()
                .zip(g.iter())
                .enumerate()
                .map(|(i, (&wv, &gv))| if mask.get(l, i) { (wv * gv).abs() } else { 0.0 })
                .collect()
        })
        .collect()
}

/// Keeps the global top `ceil(d·N)` coordinates by score.
fn global_topk_mask(layout: &SparseLayout, scores: &[Vec<f32>], density: f32) -> Mask {
    let total = layout.total_len();
    let keep = (((density as f64) * total as f64).ceil() as usize).min(total);
    let mut buf = TopKBuffer::new(keep);
    let mut offset = 0usize;
    for s in scores {
        for (i, &v) in s.iter().enumerate() {
            if v > 0.0 {
                buf.push(offset + i, v);
            }
        }
        offset += s.len();
    }
    let mut layers: Vec<Vec<bool>> = layout.iter().map(|spec| vec![false; spec.len]).collect();
    let lens = layout.lens();
    for (flat, _) in buf.into_sorted() {
        let mut rem = flat;
        for (l, &n) in lens.iter().enumerate() {
            if rem < n {
                layers[l][rem] = true;
                break;
            }
            rem -= n;
        }
    }
    Mask::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_fl::{ExperimentEnv, ModelSpec};

    fn setup() -> (ExperimentEnv, Box<dyn Model>) {
        let env = ExperimentEnv::tiny_for_tests(11);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        (env, model)
    }

    #[test]
    fn l1_mask_hits_uniform_density_per_layer() {
        let (_, model) = setup();
        let mask = l1_oneshot_mask(model.as_ref(), 0.25);
        for l in 0..mask.num_layers() {
            let expect = ((0.25f64 * mask.layer(l).len() as f64).ceil()) as usize;
            assert_eq!(mask.layer_ones(l), expect, "layer {l}");
        }
    }

    #[test]
    fn snip_respects_global_budget() {
        let (env, model) = setup();
        let mask = snip_mask(model.as_ref(), &env.server_public, 0.2, 4);
        let total = mask.total_len() as f32;
        assert!(mask.ones_count() as f32 <= 0.2 * total + 2.0);
        assert!(mask.ones_count() > 0);
    }

    #[test]
    fn snip_uses_gradients_not_just_magnitude() {
        let (env, model) = setup();
        let snip = snip_mask(model.as_ref(), &env.server_public, 0.3, 3);
        let l1 = l1_oneshot_mask(model.as_ref(), 0.3);
        assert_ne!(snip, l1, "SNIP should differ from pure magnitude");
    }

    #[test]
    fn synflow_keeps_every_layer_alive_at_moderate_density() {
        let (_, model) = setup();
        let mask = synflow_mask(model.as_ref(), 0.1, 6);
        for l in 0..mask.num_layers() {
            assert!(mask.layer_ones(l) > 0, "SynFlow collapsed layer {l}");
        }
    }

    #[test]
    fn synflow_is_deterministic() {
        let (_, model) = setup();
        let a = synflow_mask(model.as_ref(), 0.2, 3);
        let b = synflow_mask(model.as_ref(), 0.2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn step_density_schedule_endpoints() {
        assert!((step_density(0.01, 10, 10) - 0.01).abs() < 1e-6);
        assert!(step_density(0.01, 1, 10) > 0.5);
    }

    #[test]
    fn iterative_snip_differs_from_oneshot() {
        let (env, model) = setup();
        let one = snip_mask(model.as_ref(), &env.server_public, 0.1, 1);
        let many = snip_mask(model.as_ref(), &env.server_public, 0.1, 6);
        assert_ne!(one, many);
    }
}
