//! FedDST (Bibikar et al., AAAI 2022), adapted per Sec. IV-A3.
//!
//! The server random-prunes the initial model (uniform layer-wise density);
//! devices adjust the mask RigL-style (grow by gradient magnitude, drop by
//! weight magnitude) over the *entire* model each adjustment, with the same
//! `a_t` schedule as FedTiny; the server unifies the mask by weighted
//! gradient aggregation followed by magnitude pruning. Devices spend extra
//! recovery epochs around each adjustment (3 training + 2 fine-tuning per
//! paper), which is what makes FedDST's adjustment rounds expensive.

use ft_fl::{run_federated_rounds, CostLedger, ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::{densities_from_mask, device_memory_bytes, training_flops, ExtraMemory};
use ft_nn::loss::softmax_cross_entropy;
use ft_nn::{apply_mask, prunable_param_indices, sparse_layout, Mode, Model};
use ft_sparse::{random_mask, uniform_density_vector, Mask, PruneSchedule, TopKBuffer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Extra local epochs spent recovering grown weights per adjustment (the
/// paper configures 3 adjustment + 2 fine-tuning epochs).
pub const RECOVERY_EPOCHS: f64 = 2.0;

/// Runs FedDST.
pub fn run_feddst(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    d_target: f32,
    schedule: PruneSchedule,
    eval_every: usize,
) -> RunResult {
    let mut global = env.build_model(spec);
    let layout = sparse_layout(global.as_ref());
    let mut rng = ChaCha8Rng::seed_from_u64(env.cfg.seed ^ 0x00fe_dd57);
    let mut mask = random_mask(
        &mut rng,
        &layout,
        &uniform_density_vector(&layout, d_target),
    );
    apply_mask(global.as_mut(), &mask);

    let arch = global.arch();
    let mut ledger = CostLedger::new();
    let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;

    let history = {
        let mut hook = |model: &mut dyn Model,
                        mask: &mut Mask,
                        round: usize,
                        ledger: &mut CostLedger|
         -> f64 {
            if !schedule.adjusts_at(round) {
                return 0.0;
            }
            adjust_entire_model(model, mask, env, &schedule, round, ledger);
            // Recovery epochs around the adjustment.
            let densities = densities_from_mask(mask);
            RECOVERY_EPOCHS * training_flops(&arch, &densities) * max_samples
        };
        run_federated_rounds(
            global.as_mut(),
            &mut mask,
            env,
            eval_every,
            &mut ledger,
            &mut hook,
        )
    };

    let densities = densities_from_mask(&mask);
    RunResult::from_ledger(
        "feddst",
        history,
        mask.density(),
        device_memory_bytes(&arch, &densities, ExtraMemory::MaskBits),
        env.cfg.codec.name(),
        &ledger,
    )
}

/// RigL-style grow/drop over every prunable layer: devices upload the top
/// `a_t^l` gradients of pruned coordinates, the server aggregates (weighted)
/// and grows the winners, dropping the smallest-magnitude survivors.
fn adjust_entire_model(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    schedule: &PruneSchedule,
    round: usize,
    ledger: &mut CostLedger,
) {
    let counts: Vec<(usize, usize)> = (0..mask.num_layers())
        .map(|l| {
            let alive = mask.layer_ones(l);
            let pruned = mask.layer(l).len() - alive;
            (l, schedule.count_at(round, alive).min(pruned).min(alive))
        })
        .filter(|&(_, a)| a > 0)
        .collect();
    if counts.is_empty() {
        return;
    }
    let weights = env.device_weights();
    let mut agg: Vec<HashMap<usize, f64>> = vec![HashMap::new(); counts.len()];
    for (k, data) in env.parts.iter().enumerate() {
        let mut model = global.clone_model();
        // Grow scoring reads gradients of pruned coordinates; the sparse
        // execution path only produces mask-alive gradients.
        model.set_sparse_crossover(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(
            env.cfg.seed ^ 0xd57 ^ ((round as u64) << 20) ^ ((k as u64) << 44),
        );
        let bs = env.cfg.batch_size.min(data.len());
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(bs);
        let (x, y) = data.batch(&idx);
        let logits = model.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        let pos = prunable_param_indices(model.as_ref());
        let params = model.params();
        for (ui, &(l, a)) in counts.iter().enumerate() {
            let g = params[pos[l]].grad.data();
            let mut buf = TopKBuffer::new(a);
            for (i, alive) in mask.layer(l).iter().enumerate() {
                if !alive {
                    buf.push(i, g[i]);
                }
            }
            let top = buf.into_sorted();
            ledger.add_comm(top.len() as f64 * 8.0);
            ledger.add_payload_comm(ft_sparse::topk_pairs_encoded_len(top.len()) as f64);
            for (i, gv) in top {
                *agg[ui].entry(i).or_insert(0.0) += weights[k] * gv as f64;
            }
        }
    }
    let pos = prunable_param_indices(global);
    for (ui, &(l, a)) in counts.iter().enumerate() {
        let mut grow_buf = TopKBuffer::new(a);
        for (&i, &g) in &agg[ui] {
            grow_buf.push(i, g as f32);
        }
        let grow: Vec<usize> = grow_buf.into_sorted().into_iter().map(|(i, _)| i).collect();
        let wdata = global.params()[pos[l]].data.data().to_vec();
        let mut alive = mask.alive_indices(l);
        alive.sort_by(|&x, &y| {
            wdata[x]
                .abs()
                .partial_cmp(&wdata[y].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        let dropped: Vec<usize> = alive.into_iter().take(grow.len()).collect();
        for &i in &grow {
            mask.set(l, i, true);
        }
        for &i in &dropped {
            mask.set(l, i, false);
        }
        let mut params = global.params_mut();
        let w = params[pos[l]].data.data_mut();
        for &i in &dropped {
            w[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feddst_preserves_density() {
        let env = ExperimentEnv::tiny_for_tests(40);
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 2,
            local_iters: 1,
        };
        let r = run_feddst(&env, &ModelSpec::small_cnn_test(), 0.2, schedule, 2);
        assert_eq!(r.method, "feddst");
        assert!(r.final_density <= 0.21, "density {}", r.final_density);
        assert!(r.max_round_flops > 0.0);
    }

    #[test]
    fn adjustment_rounds_cost_more() {
        // Compare a FedDST run (with recovery epochs) against a fixed-mask
        // run at the same density: max round FLOPs must be higher.
        let env = ExperimentEnv::tiny_for_tests(41);
        let spec = ModelSpec::small_cnn_test();
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 2,
            local_iters: 1,
        };
        let dst = run_feddst(&env, &spec, 0.2, schedule, 0);
        let model = env.build_model(&spec);
        let mask = crate::atinit::l1_oneshot_mask(model.as_ref(), 0.2);
        let fixed =
            crate::fixed::run_with_fixed_mask(&env, &spec, &mask, "x", ExtraMemory::None, 0);
        assert!(dst.max_round_flops > fixed.max_round_flops);
    }

    #[test]
    fn mask_changes_over_run() {
        let env = ExperimentEnv::tiny_for_tests(42);
        let spec = ModelSpec::small_cnn_test();
        // Initial random mask at 0.2; history should show a live method.
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 3,
            local_iters: 1,
        };
        let r = run_feddst(&env, &spec, 0.2, schedule, 1);
        assert!(!r.history.is_empty());
        assert!(r.comm_bytes > 0.0);
    }
}
