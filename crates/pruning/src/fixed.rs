//! Runners for methods whose mask is fixed before training (SNIP, SynFlow,
//! FL-PQSU) and the dense FedAvg upper bound.

use ft_fl::{no_hook, run_federated_rounds, CostLedger, ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::{densities_from_mask, device_memory_bytes, ExtraMemory};
use ft_nn::{apply_mask, sparse_layout};
use ft_sparse::Mask;

/// Trains `spec` under a fixed `mask` with sparse FedAvg and returns the
/// uniform result record.
///
/// `extra_memory` is the method's device-memory surcharge for Table I.
///
/// # Panics
///
/// Panics if the mask does not match the model's prunable layout.
pub fn run_with_fixed_mask(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    mask: &Mask,
    method: &str,
    extra_memory: ExtraMemory,
    eval_every: usize,
) -> RunResult {
    let mut global = env.build_model(spec);
    let layout = sparse_layout(global.as_ref());
    assert!(
        mask.matches_layout(&layout),
        "mask does not fit {method}'s model"
    );
    let mut mask = mask.clone();
    apply_mask(global.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        global.as_mut(),
        &mut mask,
        env,
        eval_every,
        &mut ledger,
        &mut no_hook(),
    );
    let arch = global.arch();
    let densities = densities_from_mask(&mask);
    RunResult::from_ledger(
        method,
        history,
        mask.density(),
        device_memory_bytes(&arch, &densities, extra_memory),
        env.cfg.codec.name(),
        &ledger,
    )
}

/// The dense FedAvg upper bound (first row of Table I). Always exchanges
/// `Codec::Dense` payloads — sparse wire formats would misrepresent the
/// dense baseline's traffic.
pub fn run_fedavg_dense(env: &ExperimentEnv, spec: &ModelSpec, eval_every: usize) -> RunResult {
    let env = &*env.codec_view(ft_fl::Codec::Dense);
    let model = env.build_model(spec);
    let mask = Mask::ones(&sparse_layout(model.as_ref()));
    drop(model);
    let mut result = run_with_fixed_mask(env, spec, &mask, "fedavg", ExtraMemory::None, eval_every);
    // A dense model needs no index storage: report plain dense bytes.
    let arch = env.build_model(spec).arch();
    result.memory_bytes = 8.0 * ft_metrics::total_params(&arch) as f64;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atinit::l1_oneshot_mask;

    #[test]
    fn fixed_mask_run_keeps_density() {
        let env = ExperimentEnv::tiny_for_tests(20);
        let spec = ModelSpec::small_cnn_test();
        let model = env.build_model(&spec);
        let mask = l1_oneshot_mask(model.as_ref(), 0.3);
        let r = run_with_fixed_mask(&env, &spec, &mask, "flpqsu", ExtraMemory::None, 2);
        assert_eq!(r.method, "flpqsu");
        assert!((r.final_density - mask.density()).abs() < 1e-6);
        assert!(r.max_round_flops > 0.0);
    }

    #[test]
    fn dense_fedavg_reports_density_one() {
        let env = ExperimentEnv::tiny_for_tests(21);
        let r = run_fedavg_dense(&env, &ModelSpec::small_cnn_test(), 2);
        assert_eq!(r.final_density, 1.0);
        assert_eq!(r.method, "fedavg");
        assert!(r.memory_bytes > 0.0);
    }

    #[test]
    fn sparse_run_costs_less_than_dense() {
        let env = ExperimentEnv::tiny_for_tests(22);
        let spec = ModelSpec::small_cnn_test();
        let model = env.build_model(&spec);
        let mask = l1_oneshot_mask(model.as_ref(), 0.05);
        let sparse = run_with_fixed_mask(&env, &spec, &mask, "x", ExtraMemory::None, 0);
        let dense = run_fedavg_dense(&env, &spec, 0);
        assert!(sparse.max_round_flops < dense.max_round_flops);
        assert!(sparse.memory_bytes < dense.memory_bytes);
        assert!(sparse.comm_bytes < dense.comm_bytes);
    }
}
