//! Baseline federated pruning methods (Sec. IV-A3 of the paper).
//!
//! Every baseline produces the same [`ft_fl::RunResult`] as FedTiny so the
//! bench harnesses can tabulate them side by side:
//!
//! | Method | Where pruning happens | Extra device cost |
//! |---|---|---|
//! | [`run_fedavg_dense`] | none (dense upper bound) | — |
//! | FL-PQSU ([`l1_oneshot_mask`]) | server, one-shot L1 at init | none |
//! | SNIP ([`snip_mask`]) | server, iterative sensitivity at init | none |
//! | SynFlow ([`synflow_mask`]) | server, iterative data-free at init | none |
//! | PruneFL ([`run_prunefl`]) | server init + full-gradient adaptation | dense scores in memory |
//! | FedDST ([`run_feddst`]) | random init + device mask adjustment | extra recovery epochs |
//! | LotteryFL ([`run_lotteryfl`]) | iterative magnitude + rewind | trains the dense model |
//!
//! Adaptations from the paper (Sec. IV-A3) are documented on each runner:
//! all iterative methods share FedTiny's `ΔR = 10 / R_stop = 100` schedule
//! and `a_t` counts, SNIP/SynFlow prune iteratively at initialization on the
//! server, FL-PQSU is converted to unstructured pruning, and LotteryFL
//! prunes the global model so all devices share one structure.

mod atinit;
mod feddst;
mod fixed;
mod lotteryfl;
mod prunefl;
mod registry;

pub use atinit::{grasp_mask, l1_oneshot_mask, snip_mask, synflow_mask};
pub use feddst::run_feddst;
pub use fixed::{run_fedavg_dense, run_with_fixed_mask};
pub use lotteryfl::run_lotteryfl;
pub use prunefl::run_prunefl;
pub use registry::{run_baseline, BaselineMethod};
