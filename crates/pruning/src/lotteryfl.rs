//! LotteryFL (Li et al., SEC 2021), adapted per Sec. IV-A3.
//!
//! LotteryFL iteratively magnitude-prunes with a fixed rate and rewinds the
//! surviving weights to their initial values (the lottery-ticket procedure).
//! Because it is personalized in the original, the paper lets it prune the
//! *global* model so every device shares one structure. Devices train the
//! full-size model between pruning events, so memory and FLOPs stay at the
//! dense level (Table I's 1× row).

use ft_fl::{run_federated_rounds, CostLedger, ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::{dense_download_bytes, device_memory_bytes, forward_flops_dense, ExtraMemory};
use ft_nn::{apply_mask, flat_params, set_flat_params, sparse_layout, Model};
use ft_sparse::{magnitude_mask_global, Mask, PruneSchedule};

/// Runs LotteryFL: iterative global magnitude pruning with weight rewinding,
/// reaching `d_target` by `schedule.r_stop`.
pub fn run_lotteryfl(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    d_target: f32,
    schedule: PruneSchedule,
    eval_every: usize,
) -> RunResult {
    let mut global = env.build_model(spec);
    let theta0 = flat_params(global.as_ref());
    let layout = sparse_layout(global.as_ref());
    let mut mask = Mask::ones(&layout);
    let arch = global.arch();
    let mut ledger = CostLedger::new();

    // Pruning events until R_stop; exponential density schedule reaching the
    // target on the last event.
    let n_events = (schedule.r_stop / schedule.delta_r.max(1)).max(1);
    let mut event = 0usize;

    let history = {
        let mut hook = |model: &mut dyn Model,
                        mask: &mut Mask,
                        round: usize,
                        _ledger: &mut CostLedger|
         -> f64 {
            // Prune every ΔR rounds after at least one round of training,
            // until the event budget derived from R_stop is exhausted. (The
            // `adjusts_at` gate alone would never fire when R_stop < ΔR in
            // very short runs.)
            if round == 0 || !round.is_multiple_of(schedule.delta_r.max(1)) || event >= n_events {
                return 0.0;
            }
            event += 1;
            let d_event = d_target.powf(event as f32 / n_events as f32).max(d_target);
            let weights: Vec<Vec<f32>> = model
                .params()
                .into_iter()
                .filter(|p| p.prunable)
                .map(|p| p.data.data().to_vec())
                .collect();
            let slices: Vec<&[f32]> = weights.iter().map(|w| w.as_slice()).collect();
            *mask = magnitude_mask_global(&sparse_layout(model), &slices, d_event);
            // Rewind every parameter to initialization, then re-mask.
            set_flat_params(model, &theta0);
            apply_mask(model, mask);
            0.0
        };
        run_federated_rounds(
            global.as_mut(),
            &mut mask,
            env,
            eval_every,
            &mut ledger,
            &mut hook,
        )
    };

    // Devices train the dense model throughout: report dense costs
    // regardless of the sparse densities the generic loop recorded.
    let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
    let dense_round_flops =
        3.0 * forward_flops_dense(&arch) * max_samples * env.cfg.local_epochs as f64;
    let dense_comm = 2.0 * dense_download_bytes(&arch) * env.cfg.rounds as f64;

    let mut result = RunResult::from_ledger(
        "lotteryfl",
        history,
        mask.density(),
        device_memory_bytes(
            &arch,
            &vec![1.0; layout.num_layers()],
            ExtraMemory::DenseTraining,
        ),
        env.cfg.codec.name(),
        &ledger,
    );
    result.max_round_flops = dense_round_flops;
    result.comm_bytes = dense_comm;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lotteryfl_reaches_target_density() {
        let env = ExperimentEnv::tiny_for_tests(50);
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 3,
            local_iters: 1,
        };
        let r = run_lotteryfl(&env, &ModelSpec::small_cnn_test(), 0.2, schedule, 2);
        assert_eq!(r.method, "lotteryfl");
        assert!(r.final_density <= 0.21, "density {}", r.final_density);
    }

    #[test]
    fn lotteryfl_costs_are_dense() {
        let env = ExperimentEnv::tiny_for_tests(51);
        let spec = ModelSpec::small_cnn_test();
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 3,
            local_iters: 1,
        };
        let lottery = run_lotteryfl(&env, &spec, 0.1, schedule, 0);
        let dense = crate::fixed::run_fedavg_dense(&env, &spec, 0);
        assert!(
            (lottery.max_round_flops - dense.max_round_flops).abs() / dense.max_round_flops < 0.01
        );
        assert_eq!(lottery.memory_bytes, dense.memory_bytes);
    }

    #[test]
    fn rewind_resets_toward_init() {
        // After a run with rewinding, surviving weights descend from θ0, so
        // at minimum the mask is not all-ones and accuracy is defined.
        let env = ExperimentEnv::tiny_for_tests(52);
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 2,
            local_iters: 1,
        };
        let r = run_lotteryfl(&env, &ModelSpec::small_cnn_test(), 0.3, schedule, 1);
        assert!(r.final_density < 1.0);
        assert!((0.0..=1.0).contains(&r.accuracy));
    }
}
