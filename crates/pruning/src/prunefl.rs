//! PruneFL (Jiang et al., TNNLS 2022), adapted per Sec. IV-A3.
//!
//! The server produces the initial pruned model from a small public dataset
//! (all devices are resource-constrained, so no "powerful device" exists),
//! then *adaptive pruning* periodically reconfigures the mask from
//! **full-size aggregated gradients** uploaded by the devices. Devices
//! therefore hold dense importance scores (Table I's ~0.5× memory) and the
//! intermediate model is much denser than the target (~0.34× max FLOPs):
//! the density anneals from `d0 = max(d_target, 0.34)` down to `d_target`
//! by `R_stop`.

use ft_fl::{run_federated_rounds, CostLedger, ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::{
    densities_from_mask, device_memory_bytes, forward_flops_dense, total_params, ExtraMemory,
};
use ft_nn::loss::softmax_cross_entropy;
use ft_nn::{apply_mask, prunable_param_indices, sparse_layout, Mode, Model};
use ft_sparse::{Mask, PruneSchedule, SparseLayout, TopKBuffer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Initial density of PruneFL's server-side coarse model. Matches the
/// ~0.34× max-FLOPs factor Table I reports at every target density.
pub const PRUNEFL_INITIAL_DENSITY: f32 = 0.34;

/// Runs PruneFL: server-side initial pruning at `d0`, then full-gradient
/// adaptive pruning every `schedule.delta_r` rounds with the density
/// annealing to `d_target` by `schedule.r_stop`.
pub fn run_prunefl(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    d_target: f32,
    schedule: PruneSchedule,
    eval_every: usize,
) -> RunResult {
    let mut global = env.build_model(spec);
    let layout = sparse_layout(global.as_ref());
    let d0 = d_target.max(PRUNEFL_INITIAL_DENSITY);

    // Server-side initial pruning: one-shot |g ⊙ w| saliency on public data.
    let mut mask = server_saliency_mask(global.as_ref(), env, &layout, d0);
    apply_mask(global.as_mut(), &mask);

    let arch = global.arch();
    let total = layout.total_len();
    let batch_flops = |bs: f64| 3.0 * forward_flops_dense(&arch) * bs;
    let mut ledger = CostLedger::new();
    let mut peak_density = mask.density();

    let history = {
        let mut hook = |model: &mut dyn Model,
                        mask: &mut Mask,
                        round: usize,
                        ledger: &mut CostLedger|
         -> f64 {
            if !schedule.adjusts_at(round) {
                return 0.0;
            }
            // Devices upload full-size gradients from one local batch.
            let agg = aggregated_dense_grads(model, env, round);
            // Anneal density toward the target.
            let frac = (round as f32 / schedule.r_stop.max(1) as f32).min(1.0);
            let d_round = d0 * (d_target / d0).powf(frac);
            // Importance: w² + g² — PruneFL retains parameters that are
            // either already useful (trained magnitude) or promising
            // (large aggregated gradient). Pure g² would discard every
            // trained weight at each adjustment and collapse accuracy.
            let keep = (((d_round as f64) * total as f64).ceil() as usize).min(total);
            let mut buf = TopKBuffer::new(keep);
            let mut offset = 0usize;
            {
                let pos = ft_nn::prunable_param_indices(model);
                let params = model.params();
                for (l, g) in agg.iter().enumerate() {
                    let w = params[pos[l]].data.data();
                    for (i, &gv) in g.iter().enumerate() {
                        buf.push(offset + i, w[i] * w[i] + gv * gv);
                    }
                    offset += g.len();
                }
            }
            let new_mask = mask_from_flat(&sparse_layout(model), buf.into_sorted());
            *mask = new_mask;
            apply_mask(model, mask);
            peak_density = peak_density.max(mask.density());
            // Comm: dense gradients up (4 B/param/device), new mask down.
            ledger.add_comm(4.0 * total_params(&arch) as f64 * env.num_devices() as f64);
            ledger.add_comm(total as f64 / 8.0);
            // Measured mirror: one Dense payload per device plus the mask
            // bitmap broadcast.
            ledger.add_payload_comm(
                (ft_sparse::PAYLOAD_HEADER_BYTES as f64 + 4.0 * total_params(&arch) as f64)
                    * env.num_devices() as f64
                    + (total as f64 / 8.0).ceil(),
            );
            // One dense forward/backward batch per device.
            let bs = env.cfg.batch_size as f64;
            batch_flops(bs)
        };
        run_federated_rounds(
            global.as_mut(),
            &mut mask,
            env,
            eval_every,
            &mut ledger,
            &mut hook,
        )
    };

    let densities = densities_from_mask(&mask);
    RunResult::from_ledger(
        "prunefl",
        history,
        mask.density(),
        device_memory_bytes(&arch, &densities, ExtraMemory::DenseScores),
        env.cfg.codec.name(),
        &ledger,
    )
}

/// One-shot `|g ⊙ w|` global saliency mask from the server's public data.
fn server_saliency_mask(
    model: &dyn Model,
    env: &ExperimentEnv,
    layout: &SparseLayout,
    density: f32,
) -> Mask {
    let mut probe = model.clone_model();
    // Saliency needs dense `g ⊙ w` scores; keep the probe off the sparse path.
    probe.set_sparse_crossover(0.0);
    let (x, y) = env.server_public.full_batch();
    let logits = probe.forward(&x, Mode::Train);
    let (_, grad) = softmax_cross_entropy(&logits, &y);
    probe.backward(&grad);
    let pos = prunable_param_indices(probe.as_ref());
    let params = probe.params();
    let total = layout.total_len();
    let keep = (((density as f64) * total as f64).ceil() as usize).min(total);
    let mut buf = TopKBuffer::new(keep);
    let mut offset = 0usize;
    for &pi in &pos {
        let w = params[pi].data.data();
        let g = params[pi].grad.data();
        for i in 0..w.len() {
            buf.push(offset + i, (w[i] * g[i]).abs());
        }
        offset += w.len();
    }
    mask_from_flat(layout, buf.into_sorted())
}

/// Weighted-average dense gradients of every prunable layer, one batch per
/// device (what PruneFL devices upload during adaptive pruning).
fn aggregated_dense_grads(global: &dyn Model, env: &ExperimentEnv, round: usize) -> Vec<Vec<f32>> {
    let weights = env.device_weights();
    let mut agg: Option<Vec<Vec<f32>>> = None;
    for (k, data) in env.parts.iter().enumerate() {
        let mut model = global.clone_model();
        // PruneFL devices upload *dense* gradients (that is the method's
        // cost story) — the sparse path must not truncate them.
        model.set_sparse_crossover(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(
            env.cfg.seed ^ 0x9f1e ^ ((round as u64) << 20) ^ ((k as u64) << 44),
        );
        let bs = env.cfg.batch_size.min(data.len());
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(bs);
        let (x, y) = data.batch(&idx);
        let logits = model.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        let pos = prunable_param_indices(model.as_ref());
        let params = model.params();
        let w = weights[k] as f32;
        let grads: Vec<Vec<f32>> = pos
            .iter()
            .map(|&pi| params[pi].grad.data().iter().map(|&g| g * w).collect())
            .collect();
        match &mut agg {
            None => agg = Some(grads),
            Some(acc) => {
                for (a, g) in acc.iter_mut().zip(grads.iter()) {
                    for (av, &gv) in a.iter_mut().zip(g.iter()) {
                        *av += gv;
                    }
                }
            }
        }
    }
    agg.expect("at least one device")
}

/// Converts global flat-index selections back into a layered mask.
fn mask_from_flat(layout: &SparseLayout, selected: Vec<(usize, f32)>) -> Mask {
    let mut layers: Vec<Vec<bool>> = layout.iter().map(|s| vec![false; s.len]).collect();
    let lens = layout.lens();
    for (flat, _) in selected {
        let mut rem = flat;
        for (l, &n) in lens.iter().enumerate() {
            if rem < n {
                layers[l][rem] = true;
                break;
            }
            rem -= n;
        }
    }
    Mask::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunefl_anneals_to_target() {
        let env = ExperimentEnv::tiny_for_tests(30);
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 2,
            local_iters: 1,
        };
        let r = run_prunefl(&env, &ModelSpec::small_cnn_test(), 0.1, schedule, 2);
        assert_eq!(r.method, "prunefl");
        // After r_stop the density should be at (or near, ceil) the target.
        assert!(r.final_density <= 0.12, "density {}", r.final_density);
        assert!(r.max_round_flops > 0.0);
    }

    #[test]
    fn prunefl_memory_includes_dense_scores() {
        let env = ExperimentEnv::tiny_for_tests(31);
        let spec = ModelSpec::small_cnn_test();
        let schedule = PruneSchedule {
            delta_r: 1,
            r_stop: 2,
            local_iters: 1,
        };
        let r = run_prunefl(&env, &spec, 0.05, schedule, 0);
        let sparse_only = {
            let model = env.build_model(&spec);
            let mask = crate::atinit::l1_oneshot_mask(model.as_ref(), 0.05);
            crate::fixed::run_with_fixed_mask(&env, &spec, &mask, "x", ExtraMemory::None, 0)
        };
        assert!(
            r.memory_bytes > sparse_only.memory_bytes,
            "PruneFL must pay for dense scores"
        );
    }

    #[test]
    fn initial_density_floor_is_034() {
        let env = ExperimentEnv::tiny_for_tests(32);
        // With no adjustments (delta_r larger than rounds, so only round 0
        // adjusts at d_round = d0), density stays near d0 = 0.34.
        let schedule = PruneSchedule {
            delta_r: 100,
            r_stop: 100,
            local_iters: 1,
        };
        let r = run_prunefl(&env, &ModelSpec::small_cnn_test(), 0.01, schedule, 0);
        assert!(r.final_density > 0.2, "density {}", r.final_density);
    }
}
