//! One entry point dispatching every baseline by name.

use crate::atinit::{l1_oneshot_mask, snip_mask, synflow_mask, DEFAULT_ITERATIVE_STEPS};
use crate::feddst::run_feddst;
use crate::fixed::{run_fedavg_dense, run_with_fixed_mask};
use crate::lotteryfl::run_lotteryfl;
use crate::prunefl::run_prunefl;
use ft_fl::{Codec, ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::ExtraMemory;
use ft_sparse::PruneSchedule;
use serde::{Deserialize, Serialize};

/// The baseline methods of the paper's evaluation (Sec. IV-A3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineMethod {
    /// Dense FedAvg (upper bound; first row of Table I).
    FedAvgDense,
    /// FL-PQSU's pruning stage: one-shot L1 at initialization.
    FlPqsu,
    /// SNIP: iterative connection sensitivity at initialization.
    Snip,
    /// SynFlow: iterative data-free pruning at initialization.
    SynFlow,
    /// PruneFL: server init + full-gradient adaptive pruning.
    PruneFl,
    /// FedDST: random init + on-device mask adjustment.
    FedDst,
    /// LotteryFL: iterative magnitude pruning with rewinding.
    LotteryFl,
    /// GraSP (extension, not in the paper's tables): gradient-flow
    /// preserving at-init pruning on the server's public data.
    Grasp,
}

impl BaselineMethod {
    /// Every baseline, in the order the paper's tables list them.
    pub fn all() -> [BaselineMethod; 7] {
        [
            BaselineMethod::FedAvgDense,
            BaselineMethod::FlPqsu,
            BaselineMethod::Snip,
            BaselineMethod::SynFlow,
            BaselineMethod::PruneFl,
            BaselineMethod::FedDst,
            BaselineMethod::LotteryFl,
        ]
    }

    /// The sparse methods compared against FedTiny in Fig. 3.
    pub fn figure3_set() -> [BaselineMethod; 5] {
        [
            BaselineMethod::FlPqsu,
            BaselineMethod::Snip,
            BaselineMethod::SynFlow,
            BaselineMethod::PruneFl,
            BaselineMethod::FedDst,
        ]
    }

    /// The wire codec this method's runner exchanges updates with: the
    /// dense upper bound (and LotteryFL, whose devices train the dense
    /// model) speak `Dense`; every sparse method uploads mask-structured
    /// `MaskCsr` deltas, so its communication savings are *measured*, not
    /// just claimed.
    pub fn default_codec(self) -> Codec {
        match self {
            BaselineMethod::FedAvgDense | BaselineMethod::LotteryFl => Codec::Dense,
            _ => Codec::MaskCsr,
        }
    }

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            BaselineMethod::FedAvgDense => "fedavg",
            BaselineMethod::FlPqsu => "flpqsu",
            BaselineMethod::Snip => "snip",
            BaselineMethod::SynFlow => "synflow",
            BaselineMethod::PruneFl => "prunefl",
            BaselineMethod::FedDst => "feddst",
            BaselineMethod::LotteryFl => "lotteryfl",
            BaselineMethod::Grasp => "grasp",
        }
    }
}

/// Runs one baseline at a target density. Iterative methods (PruneFL,
/// FedDST, LotteryFL) use the schedule scaled to the environment's round
/// count (`ΔR = rounds/30`, `R_stop = rounds/3`, matching the paper's
/// 10/100 at 300 rounds).
pub fn run_baseline(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    method: BaselineMethod,
    d_target: f32,
    eval_every: usize,
) -> RunResult {
    // Each method exchanges updates in its own wire format (callers that
    // want to sweep codecs for one method use the runner fns directly).
    let env = &*env.codec_view(method.default_codec());
    let schedule = PruneSchedule::scaled_for(env.cfg.rounds, env.cfg.local_epochs);
    match method {
        BaselineMethod::FedAvgDense => run_fedavg_dense(env, spec, eval_every),
        BaselineMethod::FlPqsu => {
            let model = env.build_model(spec);
            let mask = l1_oneshot_mask(model.as_ref(), d_target);
            run_with_fixed_mask(env, spec, &mask, "flpqsu", ExtraMemory::None, eval_every)
        }
        BaselineMethod::Snip => {
            let model = env.build_model(spec);
            let mask = snip_mask(
                model.as_ref(),
                &env.server_public,
                d_target,
                DEFAULT_ITERATIVE_STEPS,
            );
            run_with_fixed_mask(env, spec, &mask, "snip", ExtraMemory::None, eval_every)
        }
        BaselineMethod::SynFlow => {
            let model = env.build_model(spec);
            let mask = synflow_mask(model.as_ref(), d_target, DEFAULT_ITERATIVE_STEPS);
            run_with_fixed_mask(env, spec, &mask, "synflow", ExtraMemory::None, eval_every)
        }
        BaselineMethod::Grasp => {
            let model = env.build_model(spec);
            let mask = crate::atinit::grasp_mask(model.as_ref(), &env.server_public, d_target);
            run_with_fixed_mask(env, spec, &mask, "grasp", ExtraMemory::None, eval_every)
        }
        BaselineMethod::PruneFl => run_prunefl(env, spec, d_target, schedule, eval_every),
        BaselineMethod::FedDst => run_feddst(env, spec, d_target, schedule, eval_every),
        BaselineMethod::LotteryFl => run_lotteryfl(env, spec, d_target, schedule, eval_every),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_baseline_runs_end_to_end() {
        let env = ExperimentEnv::tiny_for_tests(60);
        let spec = ModelSpec::small_cnn_test();
        for method in BaselineMethod::all() {
            let r = run_baseline(&env, &spec, method, 0.2, 2);
            assert_eq!(r.method, method.name(), "{method:?}");
            assert!((0.0..=1.0).contains(&r.accuracy), "{method:?}");
            assert!(r.max_round_flops > 0.0, "{method:?}");
            assert!(r.memory_bytes > 0.0, "{method:?}");
            if method != BaselineMethod::FedAvgDense {
                assert!(r.final_density <= 0.35, "{method:?}: {}", r.final_density);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut methods: Vec<BaselineMethod> = BaselineMethod::all().to_vec();
        methods.push(BaselineMethod::Grasp);
        let names: std::collections::HashSet<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn grasp_extension_runs() {
        let env = ExperimentEnv::tiny_for_tests(62);
        let spec = ModelSpec::small_cnn_test();
        let r = run_baseline(&env, &spec, BaselineMethod::Grasp, 0.2, 2);
        assert_eq!(r.method, "grasp");
        assert!(r.final_density <= 0.21, "density {}", r.final_density);
    }

    #[test]
    fn sparse_methods_cost_less_than_dense_lotteryfl() {
        let env = ExperimentEnv::tiny_for_tests(61);
        let spec = ModelSpec::small_cnn_test();
        let synflow = run_baseline(&env, &spec, BaselineMethod::SynFlow, 0.05, 0);
        let lottery = run_baseline(&env, &spec, BaselineMethod::LotteryFl, 0.05, 0);
        assert!(synflow.max_round_flops < lottery.max_round_flops);
        assert!(synflow.memory_bytes < lottery.memory_bytes);
    }
}
