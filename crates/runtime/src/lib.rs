//! Deterministic parallel runtime for the workspace's hot kernels.
//!
//! A [`Runtime`] is a small worker-pool handle built on [`std::thread::scope`]
//! (no dependencies, no long-lived threads to manage): every parallel region
//! spawns at most `threads − 1` scoped workers, hands each a deterministic
//! contiguous chunk of the work, runs the first chunk on the calling thread,
//! and joins before returning.
//!
//! ## Determinism contract
//!
//! Parallel output is **bit-for-bit identical** to sequential output, for any
//! thread count. The contract rests on two rules every kernel built on this
//! runtime follows:
//!
//! 1. Work is partitioned by *output rows*: each output element is computed
//!    entirely within one chunk, so no two threads ever accumulate into the
//!    same float.
//! 2. Within a chunk, the per-element accumulation order is exactly the
//!    sequential kernel's order (the chunk runs the same loop body over a
//!    sub-range of rows).
//!
//! Chunk boundaries ([`chunk_ranges`]) are a pure function of `(work size,
//! thread count)` — never of timing — so a run is reproducible even against
//! itself.
//!
//! A `Runtime` with one thread executes everything inline on the calling
//! thread: `FT_THREADS=1` is the exact legacy sequential path.
//!
//! # Examples
//!
//! ```
//! use ft_runtime::Runtime;
//!
//! // Square each element of a buffer, four rows at a time.
//! let rt = Runtime::new(4);
//! let mut data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
//! let chunks = rt.split_rows_mut(&mut data, 1); // row length 1 → 1000 rows
//! rt.scatter(chunks, |(rows, chunk)| {
//!     for (v, i) in chunk.iter_mut().zip(rows) {
//!         *v = (i as f32) * (i as f32);
//!     }
//! });
//! assert_eq!(data[31], 31.0 * 31.0);
//! ```

use std::ops::Range;

/// Environment variable selecting the worker count (`0` or unset ⇒ all
/// available cores; `1` ⇒ the exact sequential path).
pub const THREADS_ENV: &str = "FT_THREADS";

/// Resolves a configured thread count: `0` means "auto" — take
/// [`THREADS_ENV`] if set to a positive integer, otherwise the host's
/// available parallelism.
///
/// # Examples
///
/// ```
/// assert_eq!(ft_runtime::resolve_threads(3), 3);
/// assert!(ft_runtime::resolve_threads(0) >= 1);
/// ```
pub fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges. The split is a pure function of `(n, parts)` — the deterministic
/// chunking underneath every parallel kernel.
///
/// # Examples
///
/// ```
/// use ft_runtime::chunk_ranges;
///
/// assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(chunk_ranges(2, 8).len(), 2); // never more chunks than rows
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Default work threshold (in inner-loop operations) below which a kernel
/// runs inline: fanning out costs a few scoped-thread spawns (~tens of µs),
/// so tiny kernels are faster sequential. Purely a wall-clock heuristic —
/// results are bit-identical on either side of the threshold.
pub const PAR_WORK_MIN: usize = 1 << 18;

/// A deterministic worker-pool handle: just a bounded thread count plus the
/// scoped-spawn machinery. Cheap to copy and to store on every layer.
///
/// # Examples
///
/// ```
/// use ft_runtime::Runtime;
///
/// let rt = Runtime::from_env(); // FT_THREADS, else all cores
/// assert!(rt.threads() >= 1);
/// assert_eq!(Runtime::sequential().threads(), 1);
/// // Kernels fan out only when the job is worth a thread spawn:
/// let eager = Runtime::exact(4).with_min_work(0);
/// assert!(eager.should_parallelize(1));
/// // `new` records the requested count even when the oversubscription
/// // clamp caps the effective pool:
/// let rt = Runtime::new(10_000);
/// assert_eq!(rt.requested(), 10_000);
/// assert!(rt.threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runtime {
    requested: usize,
    threads: usize,
    min_work: usize,
}

impl Default for Runtime {
    /// The default runtime is sequential, so plain constructors keep the
    /// exact legacy path until a caller opts in via `set_runtime`.
    fn default() -> Self {
        Runtime::sequential()
    }
}

/// The host's available parallelism (≥ 1).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Runtime {
    /// A runtime with `threads` requested workers and the default
    /// [`PAR_WORK_MIN`] fan-out threshold.
    ///
    /// The *effective* worker count is clamped to [`host_parallelism`]:
    /// fanning 4 workers out on a 1-core host only adds spawn and switch
    /// overhead (results are bit-identical either way, so the clamp changes
    /// wall-clock only). When [`THREADS_ENV`] is set to a positive integer
    /// the clamp is disabled and counts are taken exactly — the determinism
    /// CI matrix oversubscribes on purpose to hunt thread-count-dependent
    /// drift. [`Runtime::exact`] opts out of the clamp programmatically.
    pub fn new(threads: usize) -> Self {
        let requested = threads.max(1);
        let clamp = match std::env::var(THREADS_ENV) {
            Ok(v) => !matches!(v.trim().parse::<usize>(), Ok(n) if n > 0),
            Err(_) => true,
        };
        let threads = if clamp {
            requested.min(host_parallelism())
        } else {
            requested
        };
        Runtime {
            requested,
            threads,
            min_work: PAR_WORK_MIN,
        }
    }

    /// A runtime with exactly `threads` effective workers (clamped to at
    /// least 1, never to the host's core count). For tests that must
    /// exercise real fan-out regardless of the machine they run on.
    pub fn exact(threads: usize) -> Self {
        Runtime {
            requested: threads.max(1),
            threads: threads.max(1),
            min_work: PAR_WORK_MIN,
        }
    }

    /// The single-threaded runtime: every parallel region runs inline on
    /// the calling thread (the exact legacy code path).
    pub fn sequential() -> Self {
        Runtime::new(1)
    }

    /// Overrides the fan-out work threshold (builder style). `0` makes
    /// every parallel region fan out regardless of size — useful in tests
    /// that must exercise the parallel path on small inputs.
    pub fn with_min_work(mut self, min_work: usize) -> Self {
        self.min_work = min_work;
        self
    }

    /// Whether a kernel with roughly `work` inner-loop operations should
    /// fan out on this runtime (parallel workers and worth a spawn).
    pub fn should_parallelize(&self, work: usize) -> bool {
        self.threads > 1 && work >= self.min_work
    }

    /// The runtime selected by the environment: `FT_THREADS` if set to a
    /// positive integer, otherwise one worker per available core.
    pub fn from_env() -> Self {
        Runtime::new(resolve_threads(0))
    }

    /// Effective worker count (after the oversubscription clamp).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count that was asked for, before the oversubscription
    /// clamp. `requested() != threads()` exactly when [`Runtime::new`]
    /// clamped an oversubscribed pool to the host's core count.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Whether parallel regions actually fan out (more than one worker).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Splits `0..rows` into this runtime's deterministic chunks.
    pub fn ranges(&self, rows: usize) -> Vec<Range<usize>> {
        chunk_ranges(rows, self.threads)
    }

    /// Splits a row-major buffer of `rows = data.len() / row_len` rows into
    /// per-chunk `(row range, mutable slice)` pairs aligned with
    /// [`Runtime::ranges`]. Feed the result to [`Runtime::scatter`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `row_len` (`row_len == 0`
    /// is allowed only for an empty buffer).
    pub fn split_rows_mut<'a, T>(
        &self,
        data: &'a mut [T],
        row_len: usize,
    ) -> Vec<(Range<usize>, &'a mut [T])> {
        if data.is_empty() {
            return Vec::new();
        }
        assert!(
            row_len > 0 && data.len().is_multiple_of(row_len),
            "buffer of {} elements is not rows of {row_len}",
            data.len()
        );
        let rows = data.len() / row_len;
        self.split_at_offsets_mut(data, rows, |r| r * row_len)
    }

    /// Splits a buffer into per-chunk slices at arbitrary row offsets:
    /// `offset_of(r)` is the element index where row `r` starts (monotone,
    /// with `offset_of(rows) == data.len()`). This is how CSR value buffers
    /// are split at `row_ptr` boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are inconsistent with `data.len()`.
    pub fn split_at_offsets_mut<'a, T>(
        &self,
        data: &'a mut [T],
        rows: usize,
        offset_of: impl Fn(usize) -> usize,
    ) -> Vec<(Range<usize>, &'a mut [T])> {
        let ranges = self.ranges(rows);
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut consumed = 0usize;
        for r in ranges {
            let end = offset_of(r.end);
            assert!(
                end >= consumed,
                "row offsets must be non-decreasing ({end} < {consumed})"
            );
            let (head, tail) = rest.split_at_mut(end - consumed);
            consumed = end;
            rest = tail;
            out.push((r, head));
        }
        assert!(
            rest.is_empty(),
            "row offsets cover {consumed} of {} elements",
            consumed + rest.len()
        );
        out
    }

    /// Runs `f` once per job, fanning the jobs out over the pool. Jobs are
    /// grouped into at most [`threads`](Runtime::threads) deterministic
    /// contiguous batches ([`chunk_ranges`] over the job list), so
    /// concurrency never exceeds the pool size no matter how many jobs are
    /// passed — one hundred devices on a 2-thread runtime run as 2 batches
    /// of 50, not 100 OS threads. The calling thread takes the first batch,
    /// scoped workers take the rest, and the call returns only when every
    /// job has finished. With one thread (or one job) everything runs
    /// inline, in order — the sequential path.
    ///
    /// Jobs carry their own disjoint `&mut` state (see
    /// [`Runtime::split_rows_mut`]), so the closure only needs `Fn`.
    pub fn scatter<J: Send, F: Fn(J) + Sync>(&self, jobs: Vec<J>, f: F) {
        if self.threads <= 1 || jobs.len() <= 1 {
            for job in jobs {
                f(job);
            }
            return;
        }
        let ranges = chunk_ranges(jobs.len(), self.threads);
        let mut rest = jobs;
        let mut batches: Vec<Vec<J>> = Vec::with_capacity(ranges.len());
        for r in ranges.iter().rev() {
            batches.push(rest.split_off(r.start));
        }
        batches.reverse();
        std::thread::scope(|scope| {
            let f = &f;
            let mut batches = batches.into_iter();
            let first = batches.next();
            let handles: Vec<_> = batches
                .map(|batch| {
                    scope.spawn(move || {
                        for job in batch {
                            f(job);
                        }
                    })
                })
                .collect();
            if let Some(batch) = first {
                for job in batch {
                    f(job);
                }
            }
            for h in handles {
                h.join().expect("runtime worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 3, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 4, 9, 64] {
                let ranges = chunk_ranges(n, parts);
                assert!(ranges.len() <= parts.min(n.max(1)));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at {n}/{parts}");
                    assert!(r.end > r.start, "empty chunk at {n}/{parts}");
                    next = r.end;
                }
                assert_eq!(next, n, "coverage at {n}/{parts}");
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_are_deterministic() {
        assert_eq!(chunk_ranges(100, 4), chunk_ranges(100, 4));
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert!(!Runtime::new(0).is_parallel());
        assert!(Runtime::exact(2).is_parallel());
    }

    /// The oversubscription clamp: `new` never fans out beyond the host's
    /// cores (a 4-worker pool on a 1-core host is strictly slower), while
    /// `exact` and an explicit `FT_THREADS` keep exact counts for the
    /// determinism suites. On the old code `new(host · 8)` reported
    /// `host · 8` effective workers and the scatter really spawned them.
    #[test]
    fn new_clamps_oversubscribed_pools() {
        let host = host_parallelism();
        let rt = Runtime::new(host * 8);
        assert_eq!(rt.requested(), host * 8);
        let env_pinned = matches!(
            std::env::var(THREADS_ENV).map(|v| v.trim().parse::<usize>()),
            Ok(Ok(n)) if n > 0
        );
        if env_pinned {
            // Determinism-matrix mode: counts are taken exactly.
            assert_eq!(rt.threads(), host * 8);
        } else {
            assert_eq!(rt.threads(), host);
        }
        // `exact` always bypasses the clamp.
        let rt = Runtime::exact(host * 8);
        assert_eq!(rt.threads(), host * 8);
        assert_eq!(rt.requested(), host * 8);
        // Requests within the host budget are never reduced.
        assert_eq!(Runtime::new(1).threads(), 1);
        assert_eq!(Runtime::new(host).requested(), host);
        assert_eq!(Runtime::new(host).threads(), host);
    }

    #[test]
    fn resolve_explicit_wins_over_env() {
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn scatter_runs_every_job_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 4, 16] {
            let rt = Runtime::exact(threads);
            let hits = AtomicUsize::new(0);
            rt.scatter((0..10).collect(), |_i: usize| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 10, "threads={threads}");
        }
    }

    #[test]
    fn scatter_with_more_threads_than_jobs() {
        let rt = Runtime::exact(64);
        let mut data = vec![0u8; 3];
        let jobs: Vec<(usize, &mut u8)> = data.iter_mut().enumerate().collect();
        rt.scatter(jobs, |(i, v)| *v = i as u8 + 1);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn scatter_concurrency_never_exceeds_pool_size() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let threads = 3usize;
        let rt = Runtime::exact(threads);
        let current = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        rt.scatter((0..40).collect::<Vec<usize>>(), |_| {
            let now = current.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            current.fetch_sub(1, Ordering::SeqCst);
        });
        // Jobs are batched onto at most `threads` workers, so observed
        // concurrency is bounded by the pool size (one-sided: no flakiness).
        assert!(peak.load(Ordering::SeqCst) <= threads);
    }

    #[test]
    fn scatter_of_nothing_is_a_noop() {
        let rt = Runtime::exact(4);
        rt.scatter(Vec::<usize>::new(), |_| panic!("no jobs to run"));
    }

    #[test]
    fn split_rows_matches_ranges() {
        let rt = Runtime::exact(3);
        let mut data = vec![0f32; 10 * 4];
        let parts = rt.split_rows_mut(&mut data, 4);
        let ranges: Vec<_> = parts.iter().map(|(r, _)| r.clone()).collect();
        assert_eq!(ranges, chunk_ranges(10, 3));
        for (r, chunk) in &parts {
            assert_eq!(chunk.len(), r.len() * 4);
        }
    }

    #[test]
    fn split_rows_empty_buffer() {
        let rt = Runtime::exact(4);
        let mut data: Vec<f32> = Vec::new();
        assert!(rt.split_rows_mut(&mut data, 7).is_empty());
        assert!(rt.split_rows_mut(&mut data, 0).is_empty());
    }

    #[test]
    fn split_at_offsets_handles_empty_rows() {
        // CSR-style split where some rows (and whole chunks) hold nothing —
        // the nnz = 0 edge case.
        let rt = Runtime::exact(4);
        let row_ptr = [0usize, 0, 0, 0, 0];
        let mut vals: Vec<f32> = Vec::new();
        let parts = rt.split_at_offsets_mut(&mut vals, 4, |r| row_ptr[r]);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|(_, c)| c.is_empty()));
    }

    #[test]
    fn split_at_offsets_uneven_rows() {
        let rt = Runtime::exact(2);
        let row_ptr = [0usize, 3, 3, 7];
        let mut vals = vec![1f32; 7];
        let parts = rt.split_at_offsets_mut(&mut vals, 3, |r| row_ptr[r]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0..2);
        assert_eq!(parts[0].1.len(), 3); // rows 0..2 hold entries 0..3
        assert_eq!(parts[1].1.len(), 4);
    }

    #[test]
    #[should_panic(expected = "not rows of")]
    fn split_rows_rejects_ragged_buffer() {
        let rt = Runtime::exact(2);
        let mut data = vec![0f32; 7];
        let _ = rt.split_rows_mut(&mut data, 3);
    }

    #[test]
    fn parallel_fill_is_bit_identical_to_sequential() {
        let fill = |rt: &Runtime| -> Vec<f32> {
            let mut out = vec![0f32; 97 * 5];
            let parts = rt.split_rows_mut(&mut out, 5);
            rt.scatter(parts, |(rows, chunk)| {
                for (local, row) in rows.enumerate() {
                    for (j, v) in chunk[local * 5..(local + 1) * 5].iter_mut().enumerate() {
                        // Accumulation order inside an element is fixed.
                        for t in 0..4 {
                            *v += (row * 31 + j * 7 + t) as f32 * 0.3;
                        }
                    }
                }
            });
            out
        };
        let seq = fill(&Runtime::sequential());
        for threads in [2usize, 3, 8, 200] {
            assert_eq!(fill(&Runtime::exact(threads)), seq, "threads={threads}");
        }
    }
}
