//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Benchmarks time closures with `std::time::Instant` and print
//! `name  median  mean` lines; there is no statistical analysis, HTML
//! report, or baseline comparison. Good enough to compare kernels on the
//! same machine in the same process, which is all the `micro_ops` bench
//! needs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration (the shim always does this).
    PerIteration,
}

/// Benchmark registry and runner.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples (auto-calibrated
    /// iterations per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample lasts ≳1ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!("{name:<40} median {:>12?}   mean {:>12?}", median, mean);
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
