//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Strategies sample deterministically from a ChaCha8 stream seeded by the
//! test's name, so failures are reproducible run-to-run. Unlike real
//! proptest there is **no shrinking**: a failing case panics with the
//! sampled inputs left to inspect via the assertion message. Supported
//! surface:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) { ... } }`
//! - range strategies (`0usize..20`, `-1.0f32..1.0`, `1..=max`), tuples of
//!   strategies, [`Just`], [`collection::vec`], `prop_map`, `prop_flat_map`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//!   [`ProptestConfig::with_cases`]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic sampling source handed to strategies.
pub struct SampleRng(pub ChaCha8Rng);

impl SampleRng {
    /// Seeds the stream from a test name, so every test has its own
    /// reproducible sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SampleRng(ChaCha8Rng::seed_from_u64(h))
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one sample.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;

    /// Transforms samples with a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sample.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut SampleRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut SampleRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, usize, u64, u32);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(usize, u64, u32);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SampleRng, Strategy};

    /// Something usable as a vector-length specification: an exact `usize`
    /// or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut SampleRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut SampleRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut SampleRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.clone())
        }
    }

    /// Vectors of `len` samples from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality of two property values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::SampleRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // Zero-argument closure so `prop_assume!` can skip the case
                // with an early `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::SampleRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3usize..8).sample(&mut rng);
            assert!((3..8).contains(&v));
            let f = (-1.0f32..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        let mut rng = crate::SampleRng::deterministic("compose");
        for _ in 0..100 {
            let (r, c, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: addition commutes.
        #[test]
        fn macro_smoke(a in 0u64..1000, b in 0u64..1000) {
            prop_assume!(a != b);
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a + b >= a, "{} {}", a, b);
        }
    }
}
