//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal deterministic reimplementation: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling for the float and integer
//! types the experiments draw, and Fisher–Yates [`seq::SliceRandom::shuffle`].
//!
//! Everything is deterministic given the generator's seed; no OS entropy is
//! ever consulted. Statistical quality is inherited from the backing
//! generator (the workspace uses the ChaCha8 implementation in the
//! `rand_chacha` shim).

/// Low-level uniform word generator.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.gen_range(-1.0f32..1.0)` or
    /// `rng.gen_range(0..k)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                // Retry the (vanishingly rare) draws that round up to the
                // exclusive upper bound.
                loop {
                    let u = $unit(rng);
                    let v = self.start + (self.end - self.start) * u;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    };
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` with 24 random bits.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

float_range!(f32, unit_f32);
float_range!(f64, unit_f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);

/// Uniform draw in `[0, bound)` by rejection of the biased tail.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (`shuffle`).

    use super::{Rng, RngCore};

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = Lcg(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Lcg(4);
        let _ = rng.gen_range(1.0f32..1.0);
    }
}
