//! Offline shim for `rand_chacha`: a real ChaCha8 stream cipher used as a
//! deterministic pseudo-random generator.
//!
//! The workspace threads [`ChaCha8Rng`] seeds through every experiment so
//! runs are reproducible. This shim implements the genuine ChaCha quarter
//! round with 8 rounds; it does **not** promise bit-compatibility with the
//! upstream `rand_chacha` crate's output stream (the workspace only relies on
//! determinism, never on specific draws).

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha8-based generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter starts at zero; nonce words from the expander as well.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.block[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 16.0).abs() < 0.1, "mean bits {mean_bits}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..13 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
