//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, this shim converts values to and
//! from a small JSON-shaped [`Value`] tree:
//!
//! - [`Serialize`] — `fn to_value(&self) -> Value`
//! - [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`
//!
//! The companion `serde_derive` proc-macro crate generates both impls for
//! structs with named fields and for enums with unit, tuple, and struct
//! variants, matching serde's externally-tagged default representation. The
//! `serde_json` shim renders [`Value`] to JSON text and parses it back.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, as in JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a mandatory object field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// The value as an `f64` if it is a number.
    pub fn as_num(&self) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives -----------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_num()? as $t)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error("tuple too short".into()))?
                            )?,
                        )+))
                    }
                    other => Err(Error(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f32::from_value(&0.25f32.to_value()).unwrap(), 0.25);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = (1usize, "x".to_string());
        assert_eq!(<(usize, String)>::from_value(&tup.to_value()).unwrap(), tup);
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Map(vec![("a".into(), Value::Num(1.0))]);
        let err = obj.field("b").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
