//! Offline shim for `serde_derive`: derive macros for the value-tree
//! `Serialize` / `Deserialize` traits in the sibling `serde` shim.
//!
//! Implemented without `syn`/`quote` (neither is available offline): a small
//! hand parser walks the item's `TokenStream` and the generated impl is
//! assembled as a string. Supported shapes — everything this workspace
//! derives on:
//!
//! - structs with named fields (including private fields; the impl lives in
//!   the defining crate),
//! - enums with unit variants, struct variants, and 1-field tuple variants,
//!
//! in serde's externally-tagged representation: structs become objects, unit
//! variants become `"Variant"`, data variants become `{"Variant": ...}`.
//! Generic parameters and serde field attributes are intentionally not
//! supported; the derive panics loudly rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim produced invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim produced invalid Deserialize impl")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive shim: `{name}` has no braced body"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

/// Advances past attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other}"),
        }
        // Consume the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0;
    let mut saw_token = false;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

// --- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(__m)\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Seq(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(__m))])\n\
                             }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(__v.field(\"{0}\")?)?,\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{ {inits} }})\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    VariantShape::Tuple(n) => {
                        if *n != 1 {
                            panic!(
                                "serde_derive shim: tuple variant `{vname}` must have exactly one field"
                            );
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{0}: ::serde::Deserialize::from_value(__inner.field(\"{0}\")?)?,\n",
                                    f.name
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1);\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::Error(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error(format!(\"cannot deserialize {name} from {{__other:?}}\"))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}
