//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], implemented over
//! the `serde` shim's [`Value`] tree.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// --- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq('[', ']', items.len(), out, indent, depth, |k, out| {
            write_value(&items[k], out, indent, depth + 1)
        }),
        Value::Map(pairs) => write_seq('{', '}', pairs.len(), out, indent, depth, |k, out| {
            write_string(&pairs[k].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(&pairs[k].1, out, indent, depth + 1)
        }),
    }
}

fn write_seq(
    open: char,
    close: char,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(k, out);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest representation that parses back to
        // the same value, which is exactly what a JSON round-trip needs.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Infinity; serde_json emits null here too.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = vec![1.5f64, -2.0, 0.25];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.5,-2,0.25]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<f64> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tταβ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn f32_values_survive_the_f64_detour() {
        for x in [0.8523f32, 1.17e12, -3.25e-7, f32::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }
}
