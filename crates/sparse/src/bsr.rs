//! Owned block-sparse-row (BSR) weight storage.
//!
//! [`BsrMatrix`] is the tiled sibling of [`CsrMatrix`](crate::CsrMatrix): the
//! weight is cut into square `block × block` tiles and every tile containing
//! at least one mask-alive coordinate is stored dense. The `ft-tensor` BSR
//! kernels then run dense inner loops over each tile — no per-entry index
//! decode — which wins over CSR exactly when the mask clusters, i.e. when the
//! average [`fill`](BsrMatrix::fill) of stored tiles is high. Dispatch in
//! `ft-nn` measures that fill and only routes through BSR past a threshold;
//! a scattered mask at the same density stays on CSR.
//!
//! Mask-dead slots inside a stored tile hold an explicit `0.0` and are
//! tracked in a per-slot liveness bitmap, so
//! [`refresh_values`](BsrMatrix::refresh_values) after an optimizer step
//! re-gathers only live slots and dead slots can never leak a stale weight
//! back into the compute.

use ft_tensor::BsrView;

/// An owned block-sparse-row weight matrix of square `block × block` tiles.
///
/// # Examples
///
/// ```
/// use ft_sparse::BsrMatrix;
///
/// // A 2×4 weight whose alive coordinates all fall in the left 2×2 tile.
/// let mask = [true, true, false, false, true, false, false, false];
/// let w = [1.0, 2.0, 9.0, 9.0, 3.0, 9.0, 9.0, 9.0];
/// let bsr = BsrMatrix::from_mask_values(&mask, &w, 2, 4, 2);
/// assert_eq!(bsr.blocks(), 1); // the right tile is all-dead and not stored
/// assert_eq!(bsr.nnz(), 3);
/// assert_eq!(bsr.fill(), 0.75); // 3 live of 4 stored slots
/// assert_eq!(bsr.to_dense(), vec![1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
    /// Per-slot mask-aliveness, parallel to `vals`. Dead slots stay `0.0`
    /// across every [`refresh_values`](BsrMatrix::refresh_values).
    live: Vec<bool>,
}

impl BsrMatrix {
    /// Packs a flat weight buffer into BSR tiles: every `block × block` tile
    /// with at least one mask-alive coordinate is stored (alive slots take
    /// their weight, dead slots an explicit `0.0`).
    ///
    /// Like CSR packing, aliveness comes from the mask alone — an alive
    /// coordinate whose current weight is `0.0` stays live so it keeps
    /// receiving updates.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0` or `mask` / `values` do not have
    /// `rows * cols` entries.
    pub fn from_mask_values(
        mask: &[bool],
        values: &[f32],
        rows: usize,
        cols: usize,
        block: usize,
    ) -> Self {
        assert!(block > 0, "block edge must be positive");
        assert_eq!(mask.len(), rows * cols, "mask length mismatch");
        assert_eq!(values.len(), rows * cols, "values length mismatch");
        let bcn = cols.div_ceil(block);
        assert!(bcn <= u32::MAX as usize, "block-column count exceeds u32");
        let brn = rows.div_ceil(block);
        let mut row_ptr = Vec::with_capacity(brn + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut live = Vec::new();
        row_ptr.push(0);
        for br in 0..brn {
            for bc in 0..bcn {
                let any_alive = (0..block).any(|r| {
                    let gr = br * block + r;
                    gr < rows
                        && (0..block).any(|c| {
                            let gc = bc * block + c;
                            gc < cols && mask[gr * cols + gc]
                        })
                });
                if !any_alive {
                    continue;
                }
                col_idx.push(bc as u32);
                for r in 0..block {
                    for c in 0..block {
                        let (gr, gc) = (br * block + r, bc * block + c);
                        let alive = gr < rows && gc < cols && mask[gr * cols + gc];
                        live.push(alive);
                        vals.push(if alive { values[gr * cols + gc] } else { 0.0 });
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        BsrMatrix {
            rows,
            cols,
            block,
            row_ptr,
            col_idx,
            vals,
            live,
        }
    }

    /// Re-gathers the live slots from a (possibly updated) flat weight
    /// buffer without touching the structure; dead slots stay `0.0`.
    /// `O(stored)`.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have `rows * cols` entries.
    pub fn refresh_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.rows * self.cols,
            "values length mismatch"
        );
        let (bs, cols) = (self.block, self.cols);
        for br in 0..self.row_ptr.len() - 1 {
            for blk in self.row_ptr[br]..self.row_ptr[br + 1] {
                let jb = self.col_idx[blk] as usize * bs;
                let base = blk * bs * bs;
                for r in 0..bs {
                    for c in 0..bs {
                        let slot = base + r * bs + c;
                        if self.live[slot] {
                            self.vals[slot] = values[(br * bs + r) * cols + jb + c];
                        }
                    }
                }
            }
        }
    }

    /// Expands back to a flat dense buffer (dead coordinates are zero).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        let (bs, cols) = (self.block, self.cols);
        for br in 0..self.row_ptr.len() - 1 {
            for blk in self.row_ptr[br]..self.row_ptr[br + 1] {
                let jb = self.col_idx[blk] as usize * bs;
                let tile = &self.vals[blk * bs * bs..(blk + 1) * bs * bs];
                for r in 0..bs {
                    let gr = br * bs + r;
                    if gr >= self.rows {
                        break;
                    }
                    for (c, &v) in tile[r * bs..(r + 1) * bs].iter().enumerate() {
                        if jb + c < cols {
                            out[gr * cols + jb + c] = v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Borrowed view for the `ft-tensor` BSR kernels.
    pub fn view(&self) -> BsrView<'_> {
        BsrView {
            rows: self.rows,
            cols: self.cols,
            block: self.block,
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            vals: &self.vals,
        }
    }

    /// Number of stored tiles.
    pub fn blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Raw tile-row start offsets (`block_rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw block-column indices, one per stored tile.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw stored values, `block²` per tile.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Number of mask-alive entries.
    pub fn nnz(&self) -> usize {
        self.live.iter().filter(|&&b| b).count()
    }

    /// Number of stored slots including tile-internal zeros — the flop count
    /// the BSR kernels actually execute.
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Average fill of stored tiles: `nnz / stored`. This is the dispatch
    /// signal — BSR beats CSR when alive coordinates cluster (high fill),
    /// and wastes flops on explicit zeros when they scatter (low fill).
    /// Returns `0.0` for a matrix with no stored tiles.
    pub fn fill(&self) -> f32 {
        if self.vals.is_empty() {
            0.0
        } else {
            self.nnz() as f32 / self.vals.len() as f32
        }
    }

    /// Alive fraction of the full matrix: `nnz / (rows · cols)`. Returns
    /// 1.0 for an empty matrix, matching `CsrMatrix::density`.
    pub fn density(&self) -> f32 {
        let total = self.rows * self.cols;
        if total == 0 {
            1.0
        } else {
            self.nnz() as f32 / total as f32
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile edge length.
    pub fn block(&self) -> usize {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn clustered_mask_stores_few_full_tiles() {
        // 4×4, block 2, alive = entire top-left tile.
        let mut mask = [false; 16];
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            mask[r * 4 + c] = true;
        }
        let w: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let bsr = BsrMatrix::from_mask_values(&mask, &w, 4, 4, 2);
        assert_eq!(bsr.blocks(), 1);
        assert_eq!(bsr.fill(), 1.0);
        assert_eq!(bsr.stored(), 4);
        assert_eq!(bsr.density(), 0.25);
    }

    #[test]
    fn scattered_mask_has_low_fill() {
        // One alive coordinate per tile: fill = 1/block².
        let mut mask = [false; 16];
        for (r, c) in [(0, 0), (0, 2), (2, 0), (2, 2)] {
            mask[r * 4 + c] = true;
        }
        let w = [1.0f32; 16];
        let bsr = BsrMatrix::from_mask_values(&mask, &w, 4, 4, 2);
        assert_eq!(bsr.blocks(), 4);
        assert_eq!(bsr.fill(), 0.25);
    }

    #[test]
    fn dense_roundtrip_matches_csr() {
        // Ragged shape (not a multiple of block) with a mixed mask.
        let (rows, cols, block) = (5, 7, 3);
        let mask: Vec<bool> = (0..rows * cols).map(|i| i % 3 != 1).collect();
        let w: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.5 - 3.0).collect();
        let bsr = BsrMatrix::from_mask_values(&mask, &w, rows, cols, block);
        let csr = CsrMatrix::from_mask_values(&mask, &w, rows, cols);
        assert_eq!(bsr.to_dense(), csr.to_dense());
        assert_eq!(bsr.nnz(), csr.nnz());
        assert_eq!(bsr.density(), csr.density());
    }

    #[test]
    fn refresh_updates_live_slots_only() {
        let mask = [true, false, true, true];
        let w0 = [1.0, 9.0, 3.0, 4.0];
        let mut bsr = BsrMatrix::from_mask_values(&mask, &w0, 2, 2, 2);
        // The dead slot's position in the weight buffer changes; the stored
        // tile must keep reading 0.0 there.
        let w1 = [10.0, 77.0, 30.0, 40.0];
        bsr.refresh_values(&w1);
        assert_eq!(bsr.to_dense(), vec![10.0, 0.0, 30.0, 40.0]);
    }

    #[test]
    fn alive_zero_weights_stay_live() {
        let mask = [true, true];
        let w = [0.0, 2.0];
        let mut bsr = BsrMatrix::from_mask_values(&mask, &w, 1, 2, 2);
        assert_eq!(bsr.nnz(), 2);
        bsr.refresh_values(&[5.0, 6.0]);
        assert_eq!(bsr.to_dense(), vec![5.0, 6.0]);
    }

    #[test]
    fn empty_matrix_is_consistent() {
        let bsr = BsrMatrix::from_mask_values(&[], &[], 0, 0, 4);
        assert_eq!(bsr.blocks(), 0);
        assert_eq!(bsr.stored(), 0);
        assert_eq!(bsr.fill(), 0.0);
        assert_eq!(bsr.density(), 1.0);
        assert!(bsr.to_dense().is_empty());
    }

    #[test]
    fn view_validates() {
        let mask = [true; 6];
        let w = [1.0f32; 6];
        let bsr = BsrMatrix::from_mask_values(&mask, &w, 2, 3, 2);
        bsr.view().validate();
        assert_eq!(bsr.view().blocks(), bsr.blocks());
    }
}
