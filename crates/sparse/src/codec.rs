//! Typed wire codecs for the device ↔ server update exchange.
//!
//! Devices never hand the server a raw dense `Vec<f32>` any more: a local
//! update is the *delta* against the round's anchor (the global parameters
//! the device downloaded), encoded by a [`Codec`] into a [`Payload`] whose
//! size in bytes is **measured** ([`Payload::encoded_len`] is exact and is
//! pinned against a real byte serialization, [`Payload::to_bytes`]) rather
//! than estimated from an analytic formula.
//!
//! ## Wire formats
//!
//! Every payload starts with a 5-byte header: a 1-byte codec tag and the
//! `u32` vector length. After the header:
//!
//! | codec       | body                                                                  |
//! |-------------|-----------------------------------------------------------------------|
//! | `Dense`     | `4·n` bytes of `f32` values                                           |
//! | `MaskCsr`   | 8-byte mask epoch, 1-byte indexed flag, `u32` nnz, `4·nnz` values; when indexed, per segment: 1-byte dense flag, then (`u32` count + `w`-byte within-segment offsets) for sparse segments |
//! | `QuantInt8` | per segment: `f32` scale, `f32` min, `1·seg_len` int8 codes           |
//! | `TopK`      | `u32` count, then `count` × (`u32` flat index, `f32` value)           |
//!
//! `MaskCsr` reuses the mask-defined structure of the CSR execution engine:
//! when the sender and the receiver hold the same mask epoch, the indices
//! are implied by the shared mask and only values travel (`w = 0`).
//! Otherwise (a stale device under buffered aggregation) within-segment
//! offsets are included, `w = 2` bytes for segments of at most 2^16
//! entries and `w = 4` beyond — the same rule
//! [`sparse_index_width`] exposes to the analytic accounting in
//! `ft-metrics`, so "cost on paper" and "cost in code" stay mutually
//! checkable.
//!
//! `TopK` optionally keeps an *error-feedback* residual on the device: the
//! coordinates not transmitted this round are carried into the next round's
//! input, so nothing is permanently lost (the standard EF-SGD memory).

use crate::TopKBuffer;
use ft_tensor::{dequantize_one, quantize_affine_i8, QuantParams};
use serde::{Deserialize, Serialize};

/// Bytes of the common payload header: 1-byte codec tag + `u32` length.
pub const PAYLOAD_HEADER_BYTES: usize = 5;

/// Why a wire frame failed to decode. Decoding never panics: any truncated,
/// corrupt, or internally inconsistent frame is rejected with one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame ended before the content its header advertises.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually left in the frame.
        have: usize,
    },
    /// The codec tag byte names no known payload kind.
    BadTag(u8),
    /// A count, flag, or index is inconsistent with the frame or the
    /// decoding context (the static message names the field).
    Inconsistent(&'static str),
    /// A values-only payload stamped with a mask epoch other than the
    /// context's — a replayed (or far-future) frame that cannot be
    /// positioned without its original mask.
    StaleEpoch {
        /// Epoch the payload claims.
        got: u64,
        /// Epoch the decoding context is at.
        want: u64,
    },
    /// Well-formed payload followed by garbage.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            DecodeError::BadTag(t) => write!(f, "unknown payload tag {t}"),
            DecodeError::Inconsistent(what) => write!(f, "inconsistent frame: {what}"),
            DecodeError::StaleEpoch { got, want } => {
                write!(
                    f,
                    "stale mask epoch: payload claims {got}, context is at {want}"
                )
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian cursor over a wire frame — or any other
/// binary blob of this workspace's wire formats (the transport frames and
/// the checkpoint codec in `ft-fl` parse through this same cursor). Every
/// read is checked before it happens, and counted reads are checked before
/// any allocation, so truncated or corrupt input yields a typed
/// [`DecodeError`], never a panic or a huge reservation.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n - self.remaining(),
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Next `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Next `f32`, bit-exact.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads `n` `f32`s; the length check happens before any allocation, so
    /// a garbage count cannot trigger a huge reservation.
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, DecodeError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or(DecodeError::Inconsistent("count overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Bytes per stored within-segment index for a segment of `len` entries:
/// 2 below 2^16, 4 beyond. Shared by the real `MaskCsr` encoder and the
/// analytic `sparse_model_bytes` accounting.
pub fn sparse_index_width(len: usize) -> usize {
    if len <= 1 << 16 {
        2
    } else {
        4
    }
}

/// Exact wire size of `n` explicit `(u32 index, f32 value)` pairs with the
/// common header — the format of top-k gradient uploads (Sec. III-D) and
/// of FedDST mask-adjustment traffic.
pub fn topk_pairs_encoded_len(n: usize) -> usize {
    PAYLOAD_HEADER_BYTES + 4 + 8 * n
}

/// Everything an encoder/decoder must agree on about the flat parameter
/// vector: which coordinates are mask-alive, how the vector splits into
/// parameter tensors, and which mask epoch produced the aliveness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireCtx {
    /// Per-coordinate aliveness over the *full* flat vector (prunable
    /// coordinates from the mask, unprunable ones always `true`).
    pub alive: Vec<bool>,
    /// Lengths of the parameter tensors, in flat order; sums to
    /// `alive.len()`.
    pub segments: Vec<usize>,
    /// Epoch of the mask behind `alive`; bumped whenever the mask changes.
    pub epoch: u64,
}

impl WireCtx {
    /// A fully-dense context: every coordinate alive, one segment.
    pub fn dense(len: usize) -> Self {
        WireCtx {
            alive: vec![true; len],
            segments: vec![len],
            epoch: 0,
        }
    }

    /// Builds a context, validating that the segments cover the vector.
    ///
    /// # Panics
    ///
    /// Panics if `segments` does not sum to `alive.len()`.
    pub fn new(alive: Vec<bool>, segments: Vec<usize>, epoch: u64) -> Self {
        assert_eq!(
            segments.iter().sum::<usize>(),
            alive.len(),
            "segments must cover the flat vector"
        );
        WireCtx {
            alive,
            segments,
            epoch,
        }
    }

    /// Full flat length.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Number of alive coordinates.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

/// Which wire codec a run exchanges updates with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Codec {
    /// Plain `f32` values for every coordinate (the pre-codec behavior,
    /// now typed and measured).
    #[default]
    Dense,
    /// Mask-structured sparse values: only alive coordinates travel;
    /// indices are dropped entirely when both ends share the mask epoch.
    MaskCsr,
    /// Per-tensor affine int8 quantization of the full delta (4x fewer
    /// bytes than `Dense` at full density).
    QuantInt8,
    /// Only the `ceil(k_frac · n)` largest-magnitude coordinates travel as
    /// explicit `(index, value)` pairs; with `error_feedback` the untransmitted
    /// remainder accumulates on the device and rides along next round.
    TopK {
        /// Fraction of the flat vector transmitted per round, in `(0, 1]`.
        k_frac: f32,
        /// Keep an on-device residual of untransmitted mass.
        error_feedback: bool,
    },
}

impl Codec {
    /// Stable lowercase name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Dense => "dense",
            Codec::MaskCsr => "mask_csr",
            Codec::QuantInt8 => "quant_int8",
            Codec::TopK { .. } => "top_k",
        }
    }

    /// Parses a codec name as used by example/bench command lines.
    /// `top_k` defaults to `k_frac = 0.1` with error feedback on.
    pub fn from_name(s: &str) -> Option<Codec> {
        match s {
            "dense" => Some(Codec::Dense),
            "mask_csr" | "maskcsr" => Some(Codec::MaskCsr),
            "quant_int8" | "quant8" => Some(Codec::QuantInt8),
            "top_k" | "topk" => Some(Codec::TopK {
                k_frac: 0.1,
                error_feedback: true,
            }),
            _ => None,
        }
    }

    /// Whether this codec keeps per-device residual state between rounds.
    pub fn uses_error_feedback(&self) -> bool {
        matches!(
            self,
            Codec::TopK {
                error_feedback: true,
                ..
            }
        )
    }

    /// Number of transmitted coordinates for a `TopK` codec over a vector
    /// of `len` entries (at least 1, at most `len`).
    fn topk_count(k_frac: f32, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        ((k_frac as f64 * len as f64).ceil() as usize).clamp(1, len)
    }

    /// Encodes `vector` (a delta against the round anchor, or a broadcast
    /// value vector) under this codec.
    ///
    /// `peer_epoch` is the mask epoch the receiver is known to hold:
    /// `MaskCsr` drops its indices exactly when it equals `ctx.epoch`.
    /// `residual` is the device's error-feedback accumulator; it is only
    /// read/updated by `TopK { error_feedback: true }` and is resized to
    /// the vector length on first use.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from `ctx.len()`, or if an
    /// error-feedback codec is given a non-empty residual of the wrong
    /// length.
    pub fn encode(
        &self,
        vector: &[f32],
        ctx: &WireCtx,
        peer_epoch: u64,
        residual: Option<&mut Vec<f32>>,
    ) -> Payload {
        assert_eq!(vector.len(), ctx.len(), "vector/context length mismatch");
        match *self {
            Codec::Dense => Payload::Dense {
                values: vector.to_vec(),
            },
            Codec::MaskCsr => {
                let alive = ctx.alive_count();
                let indexed = ctx.epoch != peer_epoch;
                let mut values = Vec::with_capacity(alive);
                // Reserve the exact index count up front: the alive count is
                // known, so the push loop must never reallocate mid-encode.
                let mut indices = Vec::with_capacity(if indexed { alive } else { 0 });
                for (i, (&v, &a)) in vector.iter().zip(ctx.alive.iter()).enumerate() {
                    if a {
                        values.push(v);
                        if indexed {
                            indices.push(i as u32);
                        }
                    }
                }
                Payload::MaskCsr {
                    epoch: ctx.epoch,
                    values,
                    indices: indexed.then_some(indices),
                    len: vector.len(),
                }
            }
            Codec::QuantInt8 => {
                let mut codes = vec![0i8; vector.len()];
                let mut params = Vec::with_capacity(ctx.segments.len());
                let mut start = 0;
                for &seg in &ctx.segments {
                    let p = quantize_affine_i8(
                        &vector[start..start + seg],
                        &mut codes[start..start + seg],
                    );
                    params.push(p);
                    start += seg;
                }
                Payload::QuantInt8 {
                    params,
                    codes,
                    len: vector.len(),
                }
            }
            Codec::TopK {
                k_frac,
                error_feedback,
            } => {
                let n = vector.len();
                let k = Self::topk_count(k_frac, n);
                let mut input = vector.to_vec();
                if error_feedback {
                    if let Some(res) = &residual {
                        if res.is_empty() {
                            // First use: zero residual, nothing to add.
                        } else {
                            assert_eq!(res.len(), n, "residual length mismatch");
                            for (x, r) in input.iter_mut().zip(res.iter()) {
                                *x += r;
                            }
                        }
                    }
                }
                let mut buf = TopKBuffer::new(k);
                buf.extend_from_slice(&input);
                let mut picked: Vec<(usize, f32)> = buf.into_sorted();
                picked.sort_unstable_by_key(|&(i, _)| i);
                if error_feedback {
                    if let Some(res) = residual {
                        if res.len() != n {
                            *res = input.clone();
                        } else {
                            res.copy_from_slice(&input);
                        }
                        for &(i, _) in &picked {
                            res[i] = 0.0;
                        }
                    }
                }
                Payload::TopK {
                    indices: picked.iter().map(|&(i, _)| i as u32).collect(),
                    values: picked.iter().map(|&(_, v)| v).collect(),
                    len: n,
                }
            }
        }
    }

    /// Closed-form wire size in bytes of a payload this codec would produce
    /// over `ctx`, *before* encoding — the round loop uses this to bill
    /// link time when the payload itself is not built yet. Exact for every
    /// codec (`MaskCsr`'s size depends only on the alive set and whether
    /// the epoch is shared, never on the values).
    pub fn encoded_len_for(&self, ctx: &WireCtx, shared_epoch: bool) -> usize {
        match *self {
            Codec::Dense => PAYLOAD_HEADER_BYTES + 4 * ctx.len(),
            Codec::MaskCsr => {
                let base = PAYLOAD_HEADER_BYTES + 8 + 1 + 4 + 4 * ctx.alive_count();
                if shared_epoch {
                    base
                } else {
                    base + maskcsr_index_bytes_for_alive(ctx)
                }
            }
            Codec::QuantInt8 => {
                PAYLOAD_HEADER_BYTES + ctx.segments.iter().map(|&s| 8 + s).sum::<usize>()
            }
            Codec::TopK { k_frac, .. } => {
                topk_pairs_encoded_len(Self::topk_count(k_frac, ctx.len()))
            }
        }
    }
}

/// Index bytes of an indexed `MaskCsr` payload whose support equals
/// `ctx.alive`: per segment, 1 flag byte, plus — for segments that are not
/// fully alive — a `u32` count and one within-segment offset per alive
/// coordinate at the segment's derived width.
fn maskcsr_index_bytes_for_alive(ctx: &WireCtx) -> usize {
    let mut total = 0;
    let mut start = 0;
    for &seg in &ctx.segments {
        let alive = ctx.alive[start..start + seg].iter().filter(|&&a| a).count();
        total += 1; // dense-segment flag
        if alive != seg {
            total += 4 + sparse_index_width(seg) * alive;
        }
        start += seg;
    }
    total
}

/// One encoded model update (or broadcast), ready to be billed by size and
/// decoded — or accumulated directly — on the receiving side.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Every coordinate as `f32`.
    Dense {
        /// The full vector.
        values: Vec<f32>,
    },
    /// Values of mask-alive coordinates, optionally with explicit indices.
    MaskCsr {
        /// Mask epoch the sender encoded under.
        epoch: u64,
        /// Values of alive coordinates, in flat order.
        values: Vec<f32>,
        /// Flat coordinates of `values`; `None` when the receiver shares
        /// the sender's mask epoch and can derive them.
        indices: Option<Vec<u32>>,
        /// Full flat length of the decoded vector.
        len: usize,
    },
    /// Per-segment affine int8 quantization.
    QuantInt8 {
        /// Affine parameters, one per segment.
        params: Vec<QuantParams>,
        /// One code per coordinate.
        codes: Vec<i8>,
        /// Full flat length.
        len: usize,
    },
    /// Explicit sparse `(index, value)` pairs, sorted by index.
    TopK {
        /// Flat coordinates, ascending.
        indices: Vec<u32>,
        /// Matching values.
        values: Vec<f32>,
        /// Full flat length.
        len: usize,
    },
}

impl Payload {
    /// Length of the decoded flat vector.
    pub fn len(&self) -> usize {
        match self {
            Payload::Dense { values } => values.len(),
            Payload::MaskCsr { len, .. }
            | Payload::QuantInt8 { len, .. }
            | Payload::TopK { len, .. } => *len,
        }
    }

    /// Whether the decoded vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Name of the codec that produced this payload.
    pub fn codec_name(&self) -> &'static str {
        match self {
            Payload::Dense { .. } => "dense",
            Payload::MaskCsr { .. } => "mask_csr",
            Payload::QuantInt8 { .. } => "quant_int8",
            Payload::TopK { .. } => "top_k",
        }
    }

    /// Exact wire size in bytes. `ctx` supplies the segment structure
    /// (`MaskCsr` index widths, `QuantInt8` block count); aliveness and
    /// epoch are irrelevant here.
    ///
    /// Pinned equal to `self.to_bytes(ctx).len()` by property test.
    pub fn encoded_len(&self, ctx: &WireCtx) -> usize {
        match self {
            Payload::Dense { values } => PAYLOAD_HEADER_BYTES + 4 * values.len(),
            Payload::MaskCsr {
                values, indices, ..
            } => {
                let mut total = PAYLOAD_HEADER_BYTES + 8 + 1 + 4 + 4 * values.len();
                if let Some(idx) = indices {
                    total += maskcsr_index_bytes(idx, &ctx.segments);
                }
                total
            }
            Payload::QuantInt8 { params, codes, .. } => {
                PAYLOAD_HEADER_BYTES + 8 * params.len() + codes.len()
            }
            Payload::TopK { indices, .. } => topk_pairs_encoded_len(indices.len()),
        }
    }

    /// Serializes the payload to actual wire bytes (little-endian). Mainly
    /// exists so tests can pin [`encoded_len`](Self::encoded_len) to a real
    /// byte stream; the simulation itself only bills sizes.
    pub fn to_bytes(&self, ctx: &WireCtx) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len(ctx));
        let tag: u8 = match self {
            Payload::Dense { .. } => 0,
            Payload::MaskCsr { .. } => 1,
            Payload::QuantInt8 { .. } => 2,
            Payload::TopK { .. } => 3,
        };
        out.push(tag);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        match self {
            Payload::Dense { values } => {
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::MaskCsr {
                epoch,
                values,
                indices,
                ..
            } => {
                out.extend_from_slice(&epoch.to_le_bytes());
                out.push(u8::from(indices.is_some()));
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                if let Some(idx) = indices {
                    write_segment_indices(idx, &ctx.segments, &mut out);
                }
            }
            Payload::QuantInt8 { params, codes, .. } => {
                for p in params {
                    out.extend_from_slice(&p.scale.to_le_bytes());
                    out.extend_from_slice(&p.min.to_le_bytes());
                }
                for &c in codes {
                    out.push(c as u8);
                }
            }
            Payload::TopK {
                indices, values, ..
            } => {
                out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                for (i, v) in indices.iter().zip(values.iter()) {
                    out.extend_from_slice(&i.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a payload back out of its wire bytes — the exact inverse of
    /// [`to_bytes`](Self::to_bytes): `from_bytes(&p.to_bytes(ctx), ctx) ==
    /// Ok(p)` for every payload encodable over `ctx` (pinned by property
    /// test). `ctx` supplies the segment structure (`MaskCsr` index widths
    /// and `QuantInt8` block count), exactly as it does for encoding.
    ///
    /// Unlike [`decode`](Self::decode) this never panics: truncated,
    /// corrupt, or inconsistent frames return a typed [`DecodeError`], so a
    /// transport can feed it untrusted bytes. "Inconsistent" includes
    /// inconsistency *with the context*: the decoded length must equal
    /// `ctx.len()`, and a values-only `MaskCsr` payload must carry the
    /// context's mask epoch ([`DecodeError::StaleEpoch`] otherwise — the
    /// signature of a replayed frame) and alive count — so an accepted
    /// payload can
    /// always be decoded/accumulated under `ctx` without hitting the panic
    /// paths of [`decode`](Self::decode).
    ///
    /// Implemented as [`PayloadView::parse`] followed by
    /// [`PayloadView::to_payload`]: the borrowed zero-copy parser is the
    /// single validation authority, so the owned and view decode paths can
    /// never drift apart.
    pub fn from_bytes(bytes: &[u8], ctx: &WireCtx) -> Result<Payload, DecodeError> {
        Ok(PayloadView::parse(bytes, ctx)?.to_payload(ctx))
    }

    /// Decodes back to a full flat vector (untransmitted coordinates are
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if a values-only `MaskCsr` payload is decoded under a context
    /// whose mask epoch differs from the sender's (the receiver would
    /// scatter into the wrong coordinates), or if sizes are inconsistent.
    pub fn decode(&self, ctx: &WireCtx) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        self.for_each_coord(ctx, |i, v| out[i] = v);
        out
    }

    /// [`decode`](Self::decode) into a caller-owned buffer: zero-fills `out`
    /// and writes every transmitted coordinate. Lets round-loop scratch
    /// (robust rules' delta buffers) be reused across rounds instead of
    /// reallocated.
    ///
    /// # Panics
    ///
    /// Same conditions as [`decode`](Self::decode), plus an `out` length
    /// mismatch.
    pub fn decode_into(&self, out: &mut [f32], ctx: &WireCtx) {
        assert_eq!(out.len(), self.len(), "decode buffer length mismatch");
        out.fill(0.0);
        self.for_each_coord(ctx, |i, v| out[i] = v);
    }

    /// Adds `weight · value` into `acc` for every transmitted coordinate —
    /// the decode-free accumulation primitive `fedavg_payloads` builds on
    /// (no per-device dense vector is ever materialized for sparse
    /// payloads).
    ///
    /// # Panics
    ///
    /// Same conditions as [`decode`](Self::decode), plus an `acc` length
    /// mismatch.
    pub fn accumulate_into(&self, weight: f64, acc: &mut [f64], ctx: &WireCtx) {
        assert_eq!(acc.len(), self.len(), "accumulator length mismatch");
        self.for_each_coord(ctx, |i, v| acc[i] += weight * v as f64);
    }

    /// Visits every transmitted `(flat coordinate, value)` pair.
    fn for_each_coord(&self, ctx: &WireCtx, mut f: impl FnMut(usize, f32)) {
        match self {
            Payload::Dense { values } => {
                for (i, &v) in values.iter().enumerate() {
                    f(i, v);
                }
            }
            Payload::MaskCsr {
                epoch,
                values,
                indices,
                len,
            } => match indices {
                Some(idx) => {
                    assert_eq!(idx.len(), values.len(), "index/value count mismatch");
                    for (&i, &v) in idx.iter().zip(values.iter()) {
                        f(i as usize, v);
                    }
                }
                None => {
                    assert_eq!(
                        *epoch, ctx.epoch,
                        "values-only MaskCsr payload decoded under a different mask epoch"
                    );
                    assert_eq!(*len, ctx.len(), "payload/context length mismatch");
                    let mut it = values.iter();
                    for (i, &a) in ctx.alive.iter().enumerate() {
                        if a {
                            let &v = it.next().expect("fewer values than alive coordinates");
                            f(i, v);
                        }
                    }
                    assert!(it.next().is_none(), "more values than alive coordinates");
                }
            },
            Payload::QuantInt8 { params, codes, .. } => {
                let mut start = 0;
                let mut seg_iter = ctx.segments.iter();
                for p in params {
                    let &seg = seg_iter.next().expect("segment/params count mismatch");
                    for (i, &c) in codes[start..start + seg].iter().enumerate() {
                        f(start + i, dequantize_one(c, *p));
                    }
                    start += seg;
                }
                assert_eq!(start, codes.len(), "segment/code count mismatch");
            }
            Payload::TopK {
                indices, values, ..
            } => {
                for (&i, &v) in indices.iter().zip(values.iter()) {
                    f(i as usize, v);
                }
            }
        }
    }

    /// Adds `weight · value` into `acc` for every transmitted coordinate
    /// inside `plan`'s shard `s` — the per-shard half of the sharded
    /// aggregation path. `acc` is the accumulator *slice for that shard
    /// only* (`acc.len() == plan.range(s).len()`, indexed relative to the
    /// shard start). Per coordinate the visit order equals
    /// [`accumulate_into`](Self::accumulate_into)'s, so summing a payload
    /// shard-by-shard over a full plan is bit-identical to one full pass.
    ///
    /// # Panics
    ///
    /// Same conditions as [`decode`](Self::decode), plus `acc`/shard length
    /// or plan/context mismatches.
    pub fn accumulate_shard_into(
        &self,
        weight: f64,
        acc: &mut [f64],
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
    ) {
        let range = plan.range(s);
        assert_eq!(acc.len(), range.len(), "shard accumulator length mismatch");
        let start = range.start;
        self.for_each_coord_in_range(ctx, plan, s, |i, v| acc[i - start] += weight * v as f64);
    }

    /// Visits every transmitted `(flat coordinate, value)` pair whose
    /// coordinate falls inside `plan`'s shard `s`.
    fn for_each_coord_in_range(
        &self,
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
        mut f: impl FnMut(usize, f32),
    ) {
        plan.assert_matches(ctx);
        let range = plan.range(s);
        match self {
            Payload::Dense { values } => {
                assert_eq!(values.len(), ctx.len(), "payload/context length mismatch");
                for (i, &v) in values[range.clone()].iter().enumerate() {
                    f(range.start + i, v);
                }
            }
            Payload::MaskCsr {
                epoch,
                values,
                indices,
                len,
            } => match indices {
                Some(idx) => {
                    assert_eq!(idx.len(), values.len(), "index/value count mismatch");
                    for (&i, &v) in idx.iter().zip(values.iter()) {
                        if range.contains(&(i as usize)) {
                            f(i as usize, v);
                        }
                    }
                }
                None => {
                    assert_eq!(
                        *epoch, ctx.epoch,
                        "values-only MaskCsr payload decoded under a different mask epoch"
                    );
                    assert_eq!(*len, ctx.len(), "payload/context length mismatch");
                    let mut cursor = plan.alive_before(s);
                    for i in range {
                        if ctx.alive[i] {
                            let &v = values.get(cursor).expect("fewer values than alive coords");
                            cursor += 1;
                            f(i, v);
                        }
                    }
                }
            },
            Payload::QuantInt8 { params, codes, .. } => {
                assert_eq!(codes.len(), ctx.len(), "segment/code count mismatch");
                let mut start = 0usize;
                for (p, &seg) in params.iter().zip(ctx.segments.iter()) {
                    let lo = start.max(range.start);
                    let hi = (start + seg).min(range.end);
                    if lo < hi {
                        for (off, &code) in codes[lo..hi].iter().enumerate() {
                            f(lo + off, dequantize_one(code, *p));
                        }
                    }
                    start += seg;
                }
            }
            Payload::TopK {
                indices, values, ..
            } => {
                for (&i, &v) in indices.iter().zip(values.iter()) {
                    if range.contains(&(i as usize)) {
                        f(i as usize, v);
                    }
                }
            }
        }
    }
}

/// A *borrowed* parse of a payload wire frame: the exact validation of
/// [`Payload::from_bytes`] (typed [`DecodeError`], never a panic) with zero
/// copies — every variant holds slices straight into the receive buffer,
/// and values are re-read with `f32::from_le_bytes` at visit time.
///
/// This is the steady-state decode path of the Collect dataplane: frames
/// land in a pooled receive buffer, `parse` validates them in place, and
/// [`accumulate_into`](Self::accumulate_into) /
/// [`accumulate_shard_into`](Self::accumulate_shard_into) fold them into a
/// reusable `f64` accumulator without materializing an owned [`Payload`].
/// Anything `parse` accepts can be materialized with
/// [`to_payload`](Self::to_payload) — [`Payload::from_bytes`] is exactly
/// that composition, so the two paths cannot drift.
#[derive(Clone, Copy, Debug)]
pub enum PayloadView<'a> {
    /// Every coordinate as raw little-endian `f32` bytes.
    Dense {
        /// `4·len` bytes of values.
        values: &'a [u8],
        /// Full flat length.
        len: usize,
    },
    /// Values of mask-alive coordinates, optionally with encoded indices.
    MaskCsr {
        /// Mask epoch the sender encoded under.
        epoch: u64,
        /// `4·nnz` bytes of alive-coordinate values, in flat order.
        values: &'a [u8],
        /// The per-segment index encoding (validated at parse); `None` for
        /// values-only payloads whose indices the shared mask implies.
        index_bytes: Option<&'a [u8]>,
        /// Number of transmitted values.
        nnz: usize,
        /// Full flat length of the decoded vector.
        len: usize,
    },
    /// Per-segment affine int8 quantization.
    QuantInt8 {
        /// `8·segments` bytes of `(f32 scale, f32 min)` pairs.
        params: &'a [u8],
        /// One int8 code byte per coordinate.
        codes: &'a [u8],
        /// Full flat length.
        len: usize,
    },
    /// Explicit sparse pairs, ascending by index.
    TopK {
        /// `8·count` bytes of `(u32 index, f32 value)` pairs.
        pairs: &'a [u8],
        /// Number of pairs.
        count: usize,
        /// Full flat length.
        len: usize,
    },
}

/// Reads the `k`-th little-endian `f32` out of a raw value slice.
#[inline]
fn f32_at(bytes: &[u8], k: usize) -> f32 {
    f32::from_le_bytes(bytes[4 * k..4 * k + 4].try_into().expect("4 bytes"))
}

impl<'a> PayloadView<'a> {
    /// Parses and fully validates a wire frame against `ctx` without
    /// copying anything out of it. Accepts exactly the frames
    /// [`Payload::from_bytes`] accepts and rejects everything else with the
    /// same typed [`DecodeError`] (`from_bytes` *is* this parse followed by
    /// [`to_payload`](Self::to_payload)). In particular the indexed
    /// `MaskCsr` and `TopK` structures are walked once here, so the
    /// accumulate methods can re-walk them infallibly.
    pub fn parse(bytes: &'a [u8], ctx: &WireCtx) -> Result<PayloadView<'a>, DecodeError> {
        let mut r = WireReader::new(bytes);
        let tag = r.u8()?;
        if tag > 3 {
            return Err(DecodeError::BadTag(tag));
        }
        let len = r.u32()? as usize;
        if len != ctx.len() {
            return Err(DecodeError::Inconsistent("length differs from context"));
        }
        let view = match tag {
            0 => {
                let nbytes = len
                    .checked_mul(4)
                    .ok_or(DecodeError::Inconsistent("count overflow"))?;
                PayloadView::Dense {
                    values: r.take(nbytes)?,
                    len,
                }
            }
            1 => {
                let epoch = r.u64()?;
                let indexed = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::Inconsistent("index flag not 0/1")),
                };
                let nnz = r.u32()? as usize;
                if nnz > len {
                    return Err(DecodeError::Inconsistent("more values than coordinates"));
                }
                if !indexed && epoch != ctx.epoch {
                    return Err(DecodeError::StaleEpoch {
                        got: epoch,
                        want: ctx.epoch,
                    });
                }
                if !indexed && nnz != ctx.alive_count() {
                    return Err(DecodeError::Inconsistent(
                        "values-only payload does not match the context's mask",
                    ));
                }
                let vbytes = nnz
                    .checked_mul(4)
                    .ok_or(DecodeError::Inconsistent("count overflow"))?;
                let values = r.take(vbytes)?;
                let index_bytes = if indexed {
                    let start = r.pos;
                    parse_segment_indices(&mut r, &ctx.segments, nnz, |_| {})?;
                    Some(&bytes[start..r.pos])
                } else {
                    None
                };
                PayloadView::MaskCsr {
                    epoch,
                    values,
                    index_bytes,
                    nnz,
                    len,
                }
            }
            2 => {
                let pbytes = ctx
                    .segments
                    .len()
                    .checked_mul(8)
                    .ok_or(DecodeError::Inconsistent("count overflow"))?;
                let params = r.take(pbytes)?;
                let codes = r.take(len)?;
                PayloadView::QuantInt8 { params, codes, len }
            }
            3 => {
                let count = r.u32()? as usize;
                if count > len {
                    return Err(DecodeError::Inconsistent("more pairs than coordinates"));
                }
                // One 8-byte pair per entry; check before taking the slice.
                if r.remaining() < 8 * count {
                    return Err(DecodeError::Truncated {
                        needed: 8 * count - r.remaining(),
                        have: r.remaining(),
                    });
                }
                let pairs = r.take(8 * count)?;
                let mut prev: Option<u32> = None;
                for c in pairs.chunks_exact(8) {
                    let i = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
                    if (i as usize) >= len {
                        return Err(DecodeError::Inconsistent("pair index out of range"));
                    }
                    if prev.is_some_and(|p| i <= p) {
                        return Err(DecodeError::Inconsistent("pair indices not ascending"));
                    }
                    prev = Some(i);
                }
                PayloadView::TopK { pairs, count, len }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        match r.remaining() {
            0 => Ok(view),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }

    /// Length of the decoded flat vector.
    pub fn len(&self) -> usize {
        match *self {
            PayloadView::Dense { len, .. }
            | PayloadView::MaskCsr { len, .. }
            | PayloadView::QuantInt8 { len, .. }
            | PayloadView::TopK { len, .. } => len,
        }
    }

    /// Whether the decoded vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Name of the codec that produced this payload.
    pub fn codec_name(&self) -> &'static str {
        match self {
            PayloadView::Dense { .. } => "dense",
            PayloadView::MaskCsr { .. } => "mask_csr",
            PayloadView::QuantInt8 { .. } => "quant_int8",
            PayloadView::TopK { .. } => "top_k",
        }
    }

    /// Materializes the owned [`Payload`] this view describes. Infallible:
    /// everything fallible happened in [`parse`](Self::parse).
    pub fn to_payload(&self, ctx: &WireCtx) -> Payload {
        match *self {
            PayloadView::Dense { values, .. } => Payload::Dense {
                values: (0..values.len() / 4).map(|k| f32_at(values, k)).collect(),
            },
            PayloadView::MaskCsr {
                epoch,
                values,
                index_bytes,
                nnz,
                len,
            } => Payload::MaskCsr {
                epoch,
                values: (0..nnz).map(|k| f32_at(values, k)).collect(),
                indices: index_bytes.map(|b| {
                    let mut r = WireReader::new(b);
                    read_segment_indices(&mut r, &ctx.segments, nnz)
                        .expect("index bytes were validated at parse")
                }),
                len,
            },
            PayloadView::QuantInt8 { params, codes, len } => Payload::QuantInt8 {
                params: params
                    .chunks_exact(8)
                    .map(|c| QuantParams {
                        scale: f32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                        min: f32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
                    })
                    .collect(),
                codes: codes.iter().map(|&b| b as i8).collect(),
                len,
            },
            PayloadView::TopK { pairs, count, len } => {
                let mut indices = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for c in pairs.chunks_exact(8) {
                    indices.push(u32::from_le_bytes(c[..4].try_into().expect("4 bytes")));
                    values.push(f32::from_le_bytes(c[4..].try_into().expect("4 bytes")));
                }
                Payload::TopK {
                    indices,
                    values,
                    len,
                }
            }
        }
    }

    /// Decodes to a full flat vector (untransmitted coordinates are zero) —
    /// test/diagnostic convenience; the hot path accumulates instead.
    ///
    /// # Panics
    ///
    /// Panics if the view was parsed against a different context.
    pub fn decode(&self, ctx: &WireCtx) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        self.for_each_coord(ctx, |i, v| out[i] = v);
        out
    }

    /// [`decode`](Self::decode) into a caller-owned buffer: zero-fills `out`
    /// and writes every transmitted coordinate, straight out of the receive
    /// buffer. The alloc-free sibling of [`Payload::decode_into`].
    ///
    /// # Panics
    ///
    /// Panics on an `out` length mismatch or a context other than the one
    /// the view was parsed against.
    pub fn decode_into(&self, out: &mut [f32], ctx: &WireCtx) {
        assert_eq!(out.len(), self.len(), "decode buffer length mismatch");
        out.fill(0.0);
        self.for_each_coord(ctx, |i, v| out[i] = v);
    }

    /// Adds `weight · value` into `acc` for every transmitted coordinate,
    /// reading values straight out of the receive buffer — bit-identical to
    /// [`Payload::accumulate_into`] on the materialized payload (per
    /// coordinate, the same `f32` values arrive in the same order).
    ///
    /// # Panics
    ///
    /// Panics on `acc` length mismatch or a context other than the one the
    /// view was parsed against.
    pub fn accumulate_into(&self, weight: f64, acc: &mut [f64], ctx: &WireCtx) {
        assert_eq!(acc.len(), self.len(), "accumulator length mismatch");
        self.for_each_coord(ctx, |i, v| acc[i] += weight * v as f64);
    }

    /// The shard-restricted sibling of [`accumulate_into`](Self::accumulate_into):
    /// adds `weight · value` for the coordinates of `plan`'s shard `s` into
    /// the shard's accumulator slice. See [`Payload::accumulate_shard_into`]
    /// for the contract.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Payload::accumulate_shard_into`].
    pub fn accumulate_shard_into(
        &self,
        weight: f64,
        acc: &mut [f64],
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
    ) {
        let range = plan.range(s);
        assert_eq!(acc.len(), range.len(), "shard accumulator length mismatch");
        let start = range.start;
        self.for_each_coord_in_range(ctx, plan, s, |i, v| acc[i - start] += weight * v as f64);
    }

    /// Visits every transmitted `(flat coordinate, value)` pair.
    fn for_each_coord(&self, ctx: &WireCtx, mut f: impl FnMut(usize, f32)) {
        match *self {
            PayloadView::Dense { values, len } => {
                assert_eq!(values.len(), 4 * len, "value byte count mismatch");
                for k in 0..len {
                    f(k, f32_at(values, k));
                }
            }
            PayloadView::MaskCsr {
                epoch,
                values,
                index_bytes,
                nnz,
                len,
            } => match index_bytes {
                Some(b) => {
                    let mut r = WireReader::new(b);
                    let mut k = 0usize;
                    parse_segment_indices(&mut r, &ctx.segments, nnz, |i| {
                        f(i as usize, f32_at(values, k));
                        k += 1;
                    })
                    .expect("index bytes were validated at parse");
                }
                None => {
                    assert_eq!(
                        epoch, ctx.epoch,
                        "values-only MaskCsr payload decoded under a different mask epoch"
                    );
                    assert_eq!(len, ctx.len(), "payload/context length mismatch");
                    let mut k = 0usize;
                    for (i, &a) in ctx.alive.iter().enumerate() {
                        if a {
                            assert!(k < nnz, "fewer values than alive coordinates");
                            f(i, f32_at(values, k));
                            k += 1;
                        }
                    }
                    assert_eq!(k, nnz, "more values than alive coordinates");
                }
            },
            PayloadView::QuantInt8 { params, codes, .. } => {
                assert_eq!(codes.len(), ctx.len(), "segment/code count mismatch");
                assert_eq!(
                    params.len(),
                    8 * ctx.segments.len(),
                    "segment/params count mismatch"
                );
                let mut start = 0usize;
                for (si, &seg) in ctx.segments.iter().enumerate() {
                    let p = QuantParams {
                        scale: f32_at(params, 2 * si),
                        min: f32_at(params, 2 * si + 1),
                    };
                    for (i, &c) in codes[start..start + seg].iter().enumerate() {
                        f(start + i, dequantize_one(c as i8, p));
                    }
                    start += seg;
                }
            }
            PayloadView::TopK { pairs, .. } => {
                for c in pairs.chunks_exact(8) {
                    let i = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
                    let v = f32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
                    f(i as usize, v);
                }
            }
        }
    }

    /// Visits every transmitted `(flat coordinate, value)` pair whose
    /// coordinate falls inside `plan`'s shard `s`.
    fn for_each_coord_in_range(
        &self,
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
        mut f: impl FnMut(usize, f32),
    ) {
        plan.assert_matches(ctx);
        let range = plan.range(s);
        match *self {
            PayloadView::Dense { values, len } => {
                assert_eq!(values.len(), 4 * len, "value byte count mismatch");
                for i in range {
                    f(i, f32_at(values, i));
                }
            }
            PayloadView::MaskCsr {
                epoch,
                values,
                index_bytes,
                nnz,
                len,
            } => match index_bytes {
                Some(b) => {
                    let mut r = WireReader::new(b);
                    let mut k = 0usize;
                    parse_segment_indices(&mut r, &ctx.segments, nnz, |i| {
                        if range.contains(&(i as usize)) {
                            f(i as usize, f32_at(values, k));
                        }
                        k += 1;
                    })
                    .expect("index bytes were validated at parse");
                }
                None => {
                    assert_eq!(
                        epoch, ctx.epoch,
                        "values-only MaskCsr payload decoded under a different mask epoch"
                    );
                    assert_eq!(len, ctx.len(), "payload/context length mismatch");
                    let mut cursor = plan.alive_before(s);
                    for i in range {
                        if ctx.alive[i] {
                            assert!(cursor < nnz, "fewer values than alive coordinates");
                            f(i, f32_at(values, cursor));
                            cursor += 1;
                        }
                    }
                }
            },
            PayloadView::QuantInt8 { params, codes, .. } => {
                assert_eq!(codes.len(), ctx.len(), "segment/code count mismatch");
                let mut start = 0usize;
                for (si, &seg) in ctx.segments.iter().enumerate() {
                    let lo = start.max(range.start);
                    let hi = (start + seg).min(range.end);
                    if lo < hi {
                        let p = QuantParams {
                            scale: f32_at(params, 2 * si),
                            min: f32_at(params, 2 * si + 1),
                        };
                        for (off, &code) in codes[lo..hi].iter().enumerate() {
                            f(lo + off, dequantize_one(code as i8, p));
                        }
                    }
                    start += seg;
                }
            }
            PayloadView::TopK { pairs, .. } => {
                for c in pairs.chunks_exact(8) {
                    let i = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
                    if range.contains(&(i as usize)) {
                        f(
                            i as usize,
                            f32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
                        );
                    }
                }
            }
        }
    }
}

/// The coordinate-sharding plan of the sharded aggregation path: a set of
/// contiguous, disjoint coordinate ranges covering the flat vector, plus —
/// per shard — the number of mask-alive coordinates *before* it (what a
/// values-only `MaskCsr` payload needs to position its value cursor inside
/// a shard without scanning from zero).
///
/// Shards are **output partitions**, never input partitions: each
/// coordinate is accumulated entirely within one shard, and within a shard
/// payloads are visited in the caller's order — so sharded accumulation is
/// bit-identical to a single sequential pass, for any shard count. Built
/// once per mask epoch and reused across rounds (the per-round scratch key
/// is `(epoch, len, shard count)` via [`matches`](Self::matches)).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    epoch: u64,
    len: usize,
    ranges: Vec<std::ops::Range<usize>>,
    alive_before: Vec<usize>,
}

impl ShardPlan {
    /// Builds a plan over `ctx` from contiguous `ranges` (typically a
    /// runtime's deterministic chunking of `0..ctx.len()`).
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not cover `0..ctx.len()` contiguously and in
    /// order.
    pub fn build(ctx: &WireCtx, ranges: Vec<std::ops::Range<usize>>) -> Self {
        let mut alive_before = Vec::with_capacity(ranges.len());
        let mut next = 0usize;
        let mut alive = 0usize;
        for r in &ranges {
            assert_eq!(r.start, next, "shard ranges must be contiguous");
            assert!(
                r.end >= r.start && r.end <= ctx.len(),
                "range out of bounds"
            );
            alive_before.push(alive);
            alive += ctx.alive[r.clone()].iter().filter(|&&a| a).count();
            next = r.end;
        }
        assert_eq!(next, ctx.len(), "shard ranges must cover the vector");
        ShardPlan {
            epoch: ctx.epoch,
            len: ctx.len(),
            ranges,
            alive_before,
        }
    }

    /// Whether this plan is still valid for `ctx` at `num_shards` shards —
    /// the scratch-reuse key. The alive set is identified by the mask
    /// epoch: callers that mutate aliveness without bumping the epoch must
    /// rebuild explicitly.
    pub fn matches(&self, ctx: &WireCtx, num_shards: usize) -> bool {
        self.epoch == ctx.epoch && self.len == ctx.len() && self.ranges.len() == num_shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Coordinate range of shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.ranges[s].clone()
    }

    /// Number of mask-alive coordinates strictly before shard `s`.
    pub fn alive_before(&self, s: usize) -> usize {
        self.alive_before[s]
    }

    /// Mask epoch the plan was built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Full flat length the plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan covers an empty vector.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn assert_matches(&self, ctx: &WireCtx) {
        assert!(
            self.epoch == ctx.epoch && self.len == ctx.len(),
            "shard plan built for epoch {}/len {} used with epoch {}/len {}",
            self.epoch,
            self.len,
            ctx.epoch,
            ctx.len()
        );
    }
}

/// Bytes of the per-segment index encoding for sorted flat `indices`.
fn maskcsr_index_bytes(indices: &[u32], segments: &[usize]) -> usize {
    let mut total = 0;
    walk_segment_indices(indices, segments, |seg, seg_indices| {
        total += 1;
        if seg_indices.len() != seg {
            total += 4 + sparse_index_width(seg) * seg_indices.len();
        }
    });
    total
}

/// Serializes the per-segment index encoding.
fn write_segment_indices(indices: &[u32], segments: &[usize], out: &mut Vec<u8>) {
    let mut start = 0u32;
    walk_segment_indices(indices, segments, |seg, seg_indices| {
        let dense = seg_indices.len() == seg;
        out.push(u8::from(dense));
        if !dense {
            out.extend_from_slice(&(seg_indices.len() as u32).to_le_bytes());
            let width = sparse_index_width(seg);
            for &i in seg_indices {
                let offset = i - start;
                if width == 2 {
                    out.extend_from_slice(&(offset as u16).to_le_bytes());
                } else {
                    out.extend_from_slice(&offset.to_le_bytes());
                }
            }
        }
        start += seg as u32;
    });
}

/// Walks the per-segment index encoding, handing every decoded flat index
/// to `sink` in ascending order — the validation core behind both the
/// owned decode ([`read_segment_indices`]) and the borrowed
/// [`PayloadView`], which validates once at parse time and re-walks the
/// same bytes allocation-free at accumulate time. Rejects any frame a real
/// encoder could not have produced: out-of-range or unsorted offsets, a
/// sparse-flagged segment that covers every entry, or a total index count
/// that disagrees with the value count.
fn parse_segment_indices(
    r: &mut WireReader<'_>,
    segments: &[usize],
    nnz: usize,
    mut sink: impl FnMut(u32),
) -> Result<(), DecodeError> {
    let mut start = 0u32;
    let mut total = 0usize;
    for &seg in segments {
        match r.u8()? {
            1 => {
                if total + seg > nnz {
                    return Err(DecodeError::Inconsistent("index/value count mismatch"));
                }
                for i in start..start + seg as u32 {
                    sink(i);
                }
                total += seg;
            }
            0 => {
                let count = r.u32()? as usize;
                if count > seg || total + count > nnz {
                    return Err(DecodeError::Inconsistent("index/value count mismatch"));
                }
                if count == seg && seg > 0 {
                    return Err(DecodeError::Inconsistent("full segment not flagged dense"));
                }
                let width = sparse_index_width(seg);
                let mut prev: Option<u32> = None;
                for _ in 0..count {
                    let offset = if width == 2 {
                        r.u16()? as u32
                    } else {
                        r.u32()?
                    };
                    if offset as usize >= seg {
                        return Err(DecodeError::Inconsistent("offset outside segment"));
                    }
                    if prev.is_some_and(|p| offset <= p) {
                        return Err(DecodeError::Inconsistent("segment offsets not ascending"));
                    }
                    prev = Some(offset);
                    sink(start + offset);
                }
                total += count;
            }
            _ => return Err(DecodeError::Inconsistent("segment flag not 0/1")),
        }
        start += seg as u32;
    }
    if total != nnz {
        return Err(DecodeError::Inconsistent("index/value count mismatch"));
    }
    Ok(())
}

/// Parses the per-segment index encoding back into sorted flat indices —
/// the inverse of [`write_segment_indices`]. The exact `nnz` capacity is
/// reserved up front, so the sink never reallocates mid-decode.
fn read_segment_indices(
    r: &mut WireReader<'_>,
    segments: &[usize],
    nnz: usize,
) -> Result<Vec<u32>, DecodeError> {
    let mut indices = Vec::with_capacity(nnz);
    parse_segment_indices(r, segments, nnz, |i| indices.push(i))?;
    Ok(indices)
}

/// Splits sorted flat `indices` by segment and hands each chunk (with its
/// segment length) to `f`.
fn walk_segment_indices(indices: &[u32], segments: &[usize], mut f: impl FnMut(usize, &[u32])) {
    let mut start = 0u32;
    let mut pos = 0usize;
    for &seg in segments {
        let end = start + seg as u32;
        let chunk_end = pos + indices[pos..].iter().take_while(|&&i| i < end).count();
        f(seg, &indices[pos..chunk_end]);
        pos = chunk_end;
        start = end;
    }
    assert_eq!(pos, indices.len(), "index outside every segment");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A two-segment context with a striped mask on the first segment.
    fn striped_ctx(epoch: u64) -> WireCtx {
        let mut alive = vec![true; 24];
        for (i, a) in alive.iter_mut().enumerate().take(16) {
            *a = i % 3 != 0;
        }
        WireCtx::new(alive, vec![16, 8], epoch)
    }

    fn masked(vector: &[f32], ctx: &WireCtx) -> Vec<f32> {
        vector
            .iter()
            .zip(ctx.alive.iter())
            .map(|(&v, &a)| if a { v } else { 0.0 })
            .collect()
    }

    #[test]
    fn codec_names_roundtrip() {
        for codec in [
            Codec::Dense,
            Codec::MaskCsr,
            Codec::QuantInt8,
            Codec::TopK {
                k_frac: 0.1,
                error_feedback: true,
            },
        ] {
            assert_eq!(
                Codec::from_name(codec.name()).map(|c| c.name()),
                Some(codec.name())
            );
        }
        assert_eq!(Codec::from_name("nope"), None);
        assert_eq!(Codec::default(), Codec::Dense);
    }

    #[test]
    fn codec_maskcsr_shared_epoch_drops_indices() {
        let ctx = striped_ctx(3);
        let v: Vec<f32> = (0..24).map(|i| i as f32 * 0.5).collect();
        let shared = Codec::MaskCsr.encode(&v, &ctx, 3, None);
        let stale = Codec::MaskCsr.encode(&v, &ctx, 2, None);
        match (&shared, &stale) {
            (
                Payload::MaskCsr { indices: None, .. },
                Payload::MaskCsr {
                    indices: Some(idx), ..
                },
            ) => assert_eq!(idx.len(), ctx.alive_count()),
            other => panic!("unexpected payload shapes: {other:?}"),
        }
        assert!(shared.encoded_len(&ctx) < stale.encoded_len(&ctx));
        // Both decode to the alive-masked vector.
        assert_eq!(shared.decode(&ctx), masked(&v, &ctx));
        assert_eq!(stale.decode(&ctx), masked(&v, &ctx));
    }

    #[test]
    #[should_panic(expected = "different mask epoch")]
    fn codec_values_only_rejects_foreign_epoch() {
        let ctx = striped_ctx(1);
        let v = vec![1.0f32; 24];
        let p = Codec::MaskCsr.encode(&v, &ctx, 1, None);
        let other = striped_ctx(2);
        let _ = p.decode(&other);
    }

    #[test]
    fn codec_indexed_payload_decodes_without_matching_mask() {
        // A stale device's mask differs from the server's: indices travel,
        // and the server decodes without consulting its own alive set.
        let dev_ctx = striped_ctx(1);
        let v: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let p = Codec::MaskCsr.encode(&v, &dev_ctx, 9, None);
        let server_ctx = WireCtx::new(vec![true; 24], vec![16, 8], 9);
        assert_eq!(p.decode(&server_ctx), masked(&v, &dev_ctx));
    }

    #[test]
    fn codec_topk_keeps_largest_magnitudes() {
        let ctx = WireCtx::dense(6);
        let v = [0.1f32, -5.0, 0.2, 4.0, -0.3, 0.0];
        let p = Codec::TopK {
            k_frac: 0.34, // ceil(0.34 * 6) = 3
            error_feedback: false,
        }
        .encode(&v, &ctx, 0, None);
        assert_eq!(p.decode(&ctx), vec![0.0, -5.0, 0.0, 4.0, -0.3, 0.0]);
        assert_eq!(p.encoded_len(&ctx), topk_pairs_encoded_len(3));
    }

    #[test]
    fn codec_topk_error_feedback_carries_residual() {
        let ctx = WireCtx::dense(4);
        let codec = Codec::TopK {
            k_frac: 0.25, // 1 coordinate per round
            error_feedback: true,
        };
        let mut residual = Vec::new();
        let p1 = codec.encode(&[1.0, 3.0, -2.0, 0.5], &ctx, 0, Some(&mut residual));
        assert_eq!(p1.decode(&ctx), vec![0.0, 3.0, 0.0, 0.0]);
        assert_eq!(residual, vec![1.0, 0.0, -2.0, 0.5]);
        // Next round's zero delta still drains the residual.
        let p2 = codec.encode(&[0.0; 4], &ctx, 0, Some(&mut residual));
        assert_eq!(p2.decode(&ctx), vec![0.0, 0.0, -2.0, 0.0]);
        assert_eq!(residual, vec![1.0, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn codec_topk_error_feedback_drains_to_zero() {
        // Constant deltas for a few rounds, then silence: with error
        // feedback every unit of mass is eventually transmitted and the
        // accumulator returns to exactly zero.
        let n = 8;
        let ctx = WireCtx::dense(n);
        let codec = Codec::TopK {
            k_frac: 0.25, // 2 of 8 coordinates per round
            error_feedback: true,
        };
        let mut residual = Vec::new();
        let mut received = vec![0.0f32; n];
        let constant = vec![1.0f32; n];
        let rounds_active = 3;
        for _ in 0..rounds_active {
            let p = codec.encode(&constant, &ctx, 0, Some(&mut residual));
            for (r, v) in received.iter_mut().zip(p.decode(&ctx)) {
                *r += v;
            }
        }
        // Drain with zero deltas: residual mass keeps flowing out.
        for _ in 0..16 {
            let p = codec.encode(&[0.0; 8], &ctx, 0, Some(&mut residual));
            for (r, v) in received.iter_mut().zip(p.decode(&ctx)) {
                *r += v;
            }
        }
        assert!(residual.iter().all(|&r| r == 0.0), "residual {residual:?}");
        assert_eq!(received, vec![rounds_active as f32; n]);
    }

    #[test]
    fn codec_size_hints_match_encodes() {
        let ctx = striped_ctx(5);
        let v: Vec<f32> = (0..24).map(|i| (i as f32).sin()).collect();
        for codec in [
            Codec::Dense,
            Codec::MaskCsr,
            Codec::QuantInt8,
            Codec::TopK {
                k_frac: 0.2,
                error_feedback: false,
            },
        ] {
            let shared = codec.encode(&v, &ctx, ctx.epoch, None);
            assert_eq!(
                codec.encoded_len_for(&ctx, true),
                shared.encoded_len(&ctx),
                "{} shared",
                codec.name()
            );
            let stale = codec.encode(&v, &ctx, ctx.epoch + 1, None);
            assert_eq!(
                codec.encoded_len_for(&ctx, false),
                stale.encoded_len(&ctx),
                "{} stale",
                codec.name()
            );
        }
    }

    #[test]
    fn codec_index_width_derivation() {
        assert_eq!(sparse_index_width(100), 2);
        assert_eq!(sparse_index_width(1 << 16), 2);
        assert_eq!(sparse_index_width((1 << 16) + 1), 4);
    }

    #[test]
    fn codec_dense_segments_need_no_offsets() {
        // Second segment fully alive: the indexed encoding marks it dense
        // and pays only the flag byte for it.
        let ctx = striped_ctx(0);
        let v = vec![1.0f32; 24];
        let stale = Codec::MaskCsr.encode(&v, &ctx, 7, None);
        let nnz_seg0 = ctx.alive[..16].iter().filter(|&&a| a).count();
        let expect = PAYLOAD_HEADER_BYTES + 8 + 1 + 4          // header
            + 4 * ctx.alive_count()                            // values
            + 1 + 4 + 2 * nnz_seg0                             // sparse segment 0
            + 1; // dense segment 1: flag only
        assert_eq!(stale.encoded_len(&ctx), expect);
    }

    fn arb_codec() -> impl Strategy<Value = Codec> {
        (0usize..4, 0.05f32..1.0, 0usize..2).prop_map(|(tag, k_frac, ef)| match tag {
            0 => Codec::Dense,
            1 => Codec::MaskCsr,
            2 => Codec::QuantInt8,
            _ => Codec::TopK {
                k_frac,
                error_feedback: ef == 1,
            },
        })
    }

    fn arb_ctx() -> impl Strategy<Value = (WireCtx, Vec<f32>)> {
        (proptest::collection::vec(1usize..12, 1..4), 0u64..100)
            .prop_flat_map(|(segments, epoch)| {
                let n: usize = segments.iter().sum();
                (
                    proptest::collection::vec(0usize..2, n),
                    proptest::collection::vec(-4.0f32..4.0, n),
                    Just(segments),
                    Just(epoch),
                )
            })
            .prop_map(|(alive_bits, values, segments, epoch)| {
                let alive: Vec<bool> = alive_bits.into_iter().map(|b| b == 1).collect();
                (WireCtx::new(alive, segments, epoch), values)
            })
    }

    #[test]
    fn codec_from_bytes_rejects_garbage_without_panicking() {
        let ctx = striped_ctx(2);
        // Unknown tag.
        assert_eq!(
            Payload::from_bytes(&[9, 0, 0, 0, 0], &ctx),
            Err(DecodeError::BadTag(9))
        );
        // Empty frame.
        assert!(matches!(
            Payload::from_bytes(&[], &ctx),
            Err(DecodeError::Truncated { .. })
        ));
        // Dense header promising more values than the context describes:
        // rejected before allocating anything huge, and before the decode
        // paths that would panic on a length mismatch.
        let mut huge = vec![0u8; 5];
        huge[0] = 0;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Payload::from_bytes(&huge, &ctx),
            Err(DecodeError::Inconsistent("length differs from context"))
        );
        // A well-formed frame for a *different* model is equally refused:
        // accepting it would trade the never-panics decode contract for a
        // panic later in aggregation.
        let foreign = Codec::Dense.encode(&[1.0f32; 8], &WireCtx::dense(8), 0, None);
        assert_eq!(
            Payload::from_bytes(&foreign.to_bytes(&WireCtx::dense(8)), &ctx),
            Err(DecodeError::Inconsistent("length differs from context"))
        );
        // Values-only MaskCsr under a foreign mask epoch: the receiver
        // could not scatter it safely, so the frame is rejected up front
        // with the typed epoch mismatch (replay detection feeds on it).
        let values_only = Codec::MaskCsr.encode(&[1.0f32; 24], &ctx, ctx.epoch, None);
        let foreign_epoch = striped_ctx(ctx.epoch + 1);
        assert!(matches!(
            Payload::from_bytes(&values_only.to_bytes(&ctx), &foreign_epoch),
            Err(DecodeError::StaleEpoch { .. })
        ));
        // Trailing garbage after a valid payload.
        let p = Codec::Dense.encode(&[1.0f32; 24], &ctx, ctx.epoch, None);
        let mut bytes = p.to_bytes(&ctx);
        bytes.push(0xAA);
        assert_eq!(
            Payload::from_bytes(&bytes, &ctx),
            Err(DecodeError::TrailingBytes(1))
        );
        // TopK with unsorted pair indices.
        let ctx6 = WireCtx::dense(6);
        let bad = Payload::TopK {
            indices: vec![3, 1],
            values: vec![1.0, 2.0],
            len: 6,
        };
        assert!(matches!(
            Payload::from_bytes(&bad.to_bytes(&ctx6), &ctx6),
            Err(DecodeError::Inconsistent(_))
        ));
        // MaskCsr index flag outside {0, 1}.
        let shared = Codec::MaskCsr.encode(&[1.0f32; 24], &ctx, ctx.epoch, None);
        let mut bytes = shared.to_bytes(&ctx);
        bytes[13] = 7; // the indexed flag byte (after tag+len+epoch)
        assert!(matches!(
            Payload::from_bytes(&bytes, &ctx),
            Err(DecodeError::Inconsistent(_))
        ));
    }

    #[test]
    fn codec_from_bytes_error_display_is_readable() {
        let e = DecodeError::Truncated { needed: 4, have: 1 };
        assert!(e.to_string().contains("truncated"));
        assert!(DecodeError::BadTag(7).to_string().contains('7'));
        assert!(DecodeError::Inconsistent("x").to_string().contains('x'));
        assert!(DecodeError::TrailingBytes(3).to_string().contains('3'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Byte round-trip: `from_bytes(to_bytes(p)) == Ok(p)` exactly, for
        /// every codec × alive pattern × matching/stale mask epoch.
        #[test]
        fn codec_from_bytes_inverts_to_bytes(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            shared in 0usize..2,
        ) {
            let peer = if shared == 1 { ctx.epoch } else { ctx.epoch.wrapping_add(1) };
            let mut residual = Vec::new();
            let p = codec.encode(&values, &ctx, peer, Some(&mut residual));
            let bytes = p.to_bytes(&ctx);
            prop_assert_eq!(Payload::from_bytes(&bytes, &ctx), Ok(p));
        }

        /// Fuzz-ish robustness: every strict prefix of a valid frame is
        /// rejected with `Err` (never a panic), and mutating any single byte
        /// either fails to parse or re-encodes to the mutated bytes.
        #[test]
        fn codec_from_bytes_never_panics_on_corruption(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            flip_pos in 0usize..4096,
            flip_xor in 1u32..256,
        ) {
            let p = codec.encode(&values, &ctx, ctx.epoch, Some(&mut Vec::new()));
            let bytes = p.to_bytes(&ctx);
            for cut in 0..bytes.len() {
                prop_assert!(Payload::from_bytes(&bytes[..cut], &ctx).is_err());
            }
            let mut mutated = bytes.clone();
            let pos = flip_pos % mutated.len();
            mutated[pos] ^= flip_xor as u8;
            if let Ok(q) = Payload::from_bytes(&mutated, &ctx) {
                // Anything that parses must be canonical: re-encoding it
                // reproduces the mutated frame byte-for-byte.
                prop_assert_eq!(q.to_bytes(&ctx), mutated);
            }
        }
        #[test]
        fn codec_encoded_len_matches_wire_bytes(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            shared in 0usize..2,
        ) {
            let peer = if shared == 1 { ctx.epoch } else { ctx.epoch.wrapping_add(1) };
            let mut residual = Vec::new();
            let p = codec.encode(&values, &ctx, peer, Some(&mut residual));
            prop_assert_eq!(p.encoded_len(&ctx), p.to_bytes(&ctx).len());
        }

        /// Dense and MaskCsr round-trip exactly on their support; QuantInt8
        /// stays within the documented half-step bound per segment.
        #[test]
        fn codec_roundtrip_error_bounds((ctx, values) in arb_ctx()) {
            // Dense: exact everywhere.
            let dense = Codec::Dense.encode(&values, &ctx, ctx.epoch, None);
            prop_assert_eq!(dense.decode(&ctx), values.clone());

            // MaskCsr: exact on alive coordinates, zero elsewhere.
            for peer in [ctx.epoch, ctx.epoch + 1] {
                let p = Codec::MaskCsr.encode(&values, &ctx, peer, None);
                let got = p.decode(&ctx);
                for ((&g, &v), &a) in got.iter().zip(values.iter()).zip(ctx.alive.iter()) {
                    prop_assert_eq!(g, if a { v } else { 0.0 });
                }
            }

            // QuantInt8: |error| ≤ segment range / 510.
            let q = Codec::QuantInt8.encode(&values, &ctx, ctx.epoch, None);
            let got = q.decode(&ctx);
            let mut start = 0;
            for &seg in &ctx.segments {
                let s = &values[start..start + seg];
                let lo = s.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let bound = (hi - lo) / 510.0 + 1e-5;
                for (&v, &g) in s.iter().zip(got[start..start + seg].iter()) {
                    prop_assert!((v - g).abs() <= bound, "{v} -> {g} beyond {bound}");
                }
                start += seg;
            }
        }

        /// Weighted accumulation is elementwise `weight · decode`.
        #[test]
        fn codec_accumulate_matches_decode(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            weight in 0.1f64..4.0,
        ) {
            let p = codec.encode(&values, &ctx, ctx.epoch, Some(&mut Vec::new()));
            let dec = p.decode(&ctx);
            let mut acc = vec![0.0f64; ctx.len()];
            p.accumulate_into(weight, &mut acc, &ctx);
            for (&a, &d) in acc.iter().zip(dec.iter()) {
                prop_assert!((a - weight * d as f64).abs() < 1e-9);
            }
        }

        /// TopK transmits exactly `ceil(k_frac · n)` coordinates and they
        /// are the largest magnitudes of its input.
        #[test]
        fn codec_topk_count_and_selection(
            values in proptest::collection::vec(-4.0f32..4.0, 1..40),
            k_frac in 0.05f32..1.0,
        ) {
            let ctx = WireCtx::dense(values.len());
            let codec = Codec::TopK { k_frac, error_feedback: false };
            let p = codec.encode(&values, &ctx, 0, None);
            let k = ((k_frac as f64 * values.len() as f64).ceil() as usize)
                .clamp(1, values.len());
            match &p {
                Payload::TopK { indices, .. } => prop_assert_eq!(indices.len(), k),
                other => prop_assert!(false, "unexpected payload {other:?}"),
            }
            // No untransmitted magnitude strictly exceeds a transmitted one.
            let dec = p.decode(&ctx);
            let min_sent = dec
                .iter()
                .filter(|v| **v != 0.0)
                .map(|v| v.abs())
                .fold(f32::INFINITY, f32::min);
            for (&v, &d) in values.iter().zip(dec.iter()) {
                if d == 0.0 {
                    prop_assert!(v.abs() <= min_sent + 1e-6);
                }
            }
        }

        /// Zero-copy decode-accumulate is BIT-identical to the owned path:
        /// for every codec × alive pattern × epoch, `PayloadView::parse`
        /// accepts exactly what `Payload::from_bytes` accepts, materializes
        /// the identical payload, and its accumulator matches bit for bit.
        #[test]
        fn codec_view_accumulate_bit_identical_to_owned(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            shared in 0usize..2,
            weight in 0.1f64..4.0,
        ) {
            let peer = if shared == 1 { ctx.epoch } else { ctx.epoch.wrapping_add(1) };
            let p = codec.encode(&values, &ctx, peer, Some(&mut Vec::new()));
            let bytes = p.to_bytes(&ctx);
            let owned = Payload::from_bytes(&bytes, &ctx).expect("valid frame");
            let view = PayloadView::parse(&bytes, &ctx).expect("valid frame");
            prop_assert_eq!(&view.to_payload(&ctx), &owned);
            prop_assert_eq!(view.codec_name(), owned.codec_name());
            prop_assert_eq!(view.len(), owned.len());

            let mut acc_owned = vec![0.25f64; ctx.len()];
            let mut acc_view = vec![0.25f64; ctx.len()];
            owned.accumulate_into(weight, &mut acc_owned, &ctx);
            view.accumulate_into(weight, &mut acc_view, &ctx);
            for (a, b) in acc_owned.iter().zip(acc_view.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            let dv = view.decode(&ctx);
            for (a, b) in owned.decode(&ctx).iter().zip(dv.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Every truncation prefix and single-byte mutation of a valid
        /// frame yields the SAME typed `DecodeError` (never a panic) from
        /// the borrowed parser as from the owned one, and anything the
        /// borrowed parser accepts re-encodes canonically.
        #[test]
        fn codec_view_parse_never_panics_on_corruption(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            flip_pos in 0usize..4096,
            flip_xor in 1u32..256,
        ) {
            let p = codec.encode(&values, &ctx, ctx.epoch, Some(&mut Vec::new()));
            let bytes = p.to_bytes(&ctx);
            for cut in 0..bytes.len() {
                let e = PayloadView::parse(&bytes[..cut], &ctx)
                    .map(|v| v.to_payload(&ctx));
                prop_assert_eq!(e, Payload::from_bytes(&bytes[..cut], &ctx));
                prop_assert!(PayloadView::parse(&bytes[..cut], &ctx).is_err());
            }
            let mut mutated = bytes.clone();
            let pos = flip_pos % mutated.len();
            mutated[pos] ^= flip_xor as u8;
            match PayloadView::parse(&mutated, &ctx) {
                Ok(v) => {
                    let q = v.to_payload(&ctx);
                    prop_assert_eq!(Payload::from_bytes(&mutated, &ctx), Ok(q.clone()));
                    prop_assert_eq!(q.to_bytes(&ctx), mutated);
                }
                Err(e) => prop_assert_eq!(Payload::from_bytes(&mutated, &ctx), Err(e)),
            }
        }

        /// Shard-by-shard accumulation over a `ShardPlan` is bit-identical
        /// to one full sequential pass — for any shard count, for both the
        /// owned payload and the borrowed view. This is the determinism
        /// contract the sharded Collect dataplane rests on.
        #[test]
        fn codec_shard_accumulate_bit_identical_to_full(
            (ctx, values) in arb_ctx(),
            codec in arb_codec(),
            shared in 0usize..2,
            num_shards in 1usize..6,
            weight in 0.1f64..4.0,
        ) {
            let peer = if shared == 1 { ctx.epoch } else { ctx.epoch.wrapping_add(1) };
            let p = codec.encode(&values, &ctx, peer, Some(&mut Vec::new()));
            let bytes = p.to_bytes(&ctx);
            let view = PayloadView::parse(&bytes, &ctx).expect("valid frame");

            let n = ctx.len();
            let ranges: Vec<_> = (0..num_shards)
                .map(|s| (s * n / num_shards)..((s + 1) * n / num_shards))
                .collect();
            let plan = ShardPlan::build(&ctx, ranges);
            prop_assert!(plan.matches(&ctx, num_shards));

            let mut full = vec![0.5f64; n];
            p.accumulate_into(weight, &mut full, &ctx);

            let mut sharded_owned = vec![0.5f64; n];
            let mut sharded_view = vec![0.5f64; n];
            for s in 0..plan.num_shards() {
                let r = plan.range(s);
                p.accumulate_shard_into(weight, &mut sharded_owned[r.clone()], &ctx, &plan, s);
                view.accumulate_shard_into(weight, &mut sharded_view[r], &ctx, &plan, s);
            }
            for ((a, b), c) in full.iter().zip(sharded_owned.iter()).zip(sharded_view.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
                prop_assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }
}
