//! Descriptions of a model's prunable parameter tensors, and the CSR
//! row-compressed weight representation the sparse execution engine packs
//! them into.

use ft_tensor::CsrView;
use serde::{Deserialize, Serialize};

/// One prunable parameter tensor (e.g. a convolution's weight), identified by
/// name and flat length.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// Number of scalar weights in the tensor.
    pub len: usize,
}

/// Ordered list of a model's prunable tensors.
///
/// The order matches the order in which the model exposes its prunable
/// parameters; masks, density vectors and block partitions are all indexed
/// against this layout.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseLayout {
    layers: Vec<LayerSpec>,
}

impl SparseLayout {
    /// Builds a layout from `(name, len)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ft_sparse::SparseLayout;
    /// let l = SparseLayout::new(vec![("a".into(), 4), ("b".into(), 6)]);
    /// assert_eq!(l.num_layers(), 2);
    /// assert_eq!(l.total_len(), 10);
    /// ```
    pub fn new(specs: Vec<(String, usize)>) -> Self {
        SparseLayout {
            layers: specs
                .into_iter()
                .map(|(name, len)| LayerSpec { name, len })
                .collect(),
        }
    }

    /// Number of prunable tensors.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of prunable scalars across all tensors.
    pub fn total_len(&self) -> usize {
        self.layers.iter().map(|l| l.len).sum()
    }

    /// The spec of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &LayerSpec {
        &self.layers[i]
    }

    /// Iterates over the layer specs in order.
    pub fn iter(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter()
    }

    /// Lengths of each layer, in order.
    pub fn lens(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.len).collect()
    }
}

/// An owned compressed-sparse-row weight matrix.
///
/// This is the storage format of the sparse execution engine: a layer whose
/// mask density falls below the dispatch crossover packs its weight into a
/// `CsrMatrix` and routes its GEMMs through the `spmm`/`sddmm` kernels in
/// `ft-tensor`. The *structure* (`row_ptr`, `col_idx`) comes from the mask
/// and only changes when the mask changes; the *values* are re-gathered from
/// the live weight buffer with [`CsrMatrix::refresh_values`] after every
/// optimizer step, which costs `O(nnz)` instead of an `O(rows · cols)`
/// rescan.
///
/// Mask-alive coordinates whose current value happens to be `0.0` (freshly
/// grown weights, for instance) are **kept** in the structure: they must
/// keep receiving gradient through the sampled-dense kernels so they can
/// move away from zero.
///
/// # Examples
///
/// ```
/// use ft_sparse::CsrMatrix;
///
/// // A 2×3 weight with a mask keeping the corners.
/// let mask = [true, false, true, false, false, true];
/// let weights = [1.0, 9.0, 2.0, 9.0, 9.0, 3.0];
/// let csr = CsrMatrix::from_mask_values(&mask, &weights, 2, 3);
/// assert_eq!(csr.nnz(), 3);
/// assert_eq!(csr.density(), 0.5);
/// assert_eq!(csr.to_dense(), vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl CsrMatrix {
    /// Packs a flat weight buffer into CSR, keeping exactly the mask-alive
    /// coordinates (regardless of their current value).
    ///
    /// # Panics
    ///
    /// Panics if `mask` / `values` do not have `rows * cols` entries.
    pub fn from_mask_values(mask: &[bool], values: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(mask.len(), rows * cols, "mask length mismatch");
        assert_eq!(values.len(), rows * cols, "values length mismatch");
        assert!(cols <= u32::MAX as usize, "column count exceeds u32 range");
        let nnz = mask.iter().filter(|&&b| b).count();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                if mask[r * cols + c] {
                    col_idx.push(c as u32);
                    vals.push(values[r * cols + c]);
                }
            }
            row_ptr.push(vals.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Packs a flat buffer keeping its nonzero coordinates (no mask).
    pub fn from_dense(values: &[f32], rows: usize, cols: usize) -> Self {
        let mask: Vec<bool> = values.iter().map(|&v| v != 0.0).collect();
        Self::from_mask_values(&mask, values, rows, cols)
    }

    /// Re-gathers the stored values from a (possibly updated) flat weight
    /// buffer without touching the structure. `O(nnz)`.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have `rows * cols` entries.
    pub fn refresh_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.rows * self.cols,
            "values length mismatch"
        );
        let cols = self.cols;
        for r in 0..self.rows {
            let base = r * cols;
            for nz in self.row_ptr[r]..self.row_ptr[r + 1] {
                self.vals[nz] = values[base + self.col_idx[nz] as usize];
            }
        }
    }

    /// Scatters per-nonzero values (e.g. gradients from an `sddmm` kernel)
    /// into a flat dense buffer, accumulating.
    ///
    /// # Panics
    ///
    /// Panics if `contrib` does not have `nnz` entries or `out` does not
    /// have `rows * cols` entries.
    pub fn scatter_add(&self, contrib: &[f32], out: &mut [f32]) {
        assert_eq!(contrib.len(), self.nnz(), "contribution length mismatch");
        assert_eq!(out.len(), self.rows * self.cols, "output length mismatch");
        for r in 0..self.rows {
            let base = r * self.cols;
            for nz in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[base + self.col_idx[nz] as usize] += contrib[nz];
            }
        }
    }

    /// Expands back to a flat dense buffer (pruned coordinates are zero).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        self.scatter_add(&self.vals, &mut out);
        out
    }

    /// Borrowed view for the `ft-tensor` sparse kernels.
    pub fn view(&self) -> CsrView<'_> {
        CsrView {
            rows: self.rows,
            cols: self.cols,
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            vals: &self.vals,
        }
    }

    /// Number of stored (mask-alive) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Raw row start offsets (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column indices, one per stored entry.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw stored values.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored fraction: `nnz / (rows · cols)`. Returns 1.0 for an empty
    /// matrix.
    pub fn density(&self) -> f32 {
        let total = self.rows * self.cols;
        if total == 0 {
            1.0
        } else {
            self.nnz() as f32 / total as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_accessors() {
        let l = SparseLayout::new(vec![("x".into(), 3), ("y".into(), 7)]);
        assert_eq!(l.num_layers(), 2);
        assert_eq!(l.total_len(), 10);
        assert_eq!(l.layer(1).name, "y");
        assert_eq!(l.lens(), vec![3, 7]);
        assert_eq!(l.iter().count(), 2);
    }

    #[test]
    fn empty_layout() {
        let l = SparseLayout::new(vec![]);
        assert_eq!(l.num_layers(), 0);
        assert_eq!(l.total_len(), 0);
    }

    #[test]
    fn csr_roundtrips_masked_weights() {
        let mask = [true, false, false, true, true, false];
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let csr = CsrMatrix::from_mask_values(&mask, &w, 3, 2);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), vec![1.0, 0.0, 0.0, 4.0, 5.0, 0.0]);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 2);
        assert!((csr.density() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn csr_keeps_alive_zeros_in_structure() {
        // A freshly grown weight is alive but currently 0.0 — it must stay
        // in the structure so gradients keep flowing to it.
        let mask = [true, true];
        let w = [0.0, 2.0];
        let csr = CsrMatrix::from_mask_values(&mask, &w, 1, 2);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn refresh_values_tracks_weight_updates() {
        let mask = [true, false, true, true];
        let w0 = [1.0, 9.0, 3.0, 4.0];
        let mut csr = CsrMatrix::from_mask_values(&mask, &w0, 2, 2);
        let w1 = [10.0, 9.0, 30.0, 40.0];
        csr.refresh_values(&w1);
        assert_eq!(csr.to_dense(), vec![10.0, 0.0, 30.0, 40.0]);
    }

    #[test]
    fn scatter_add_accumulates_at_structure() {
        let mask = [true, false, false, true];
        let w = [1.0, 0.0, 0.0, 2.0];
        let csr = CsrMatrix::from_mask_values(&mask, &w, 2, 2);
        let mut grad = vec![0.5; 4];
        csr.scatter_add(&[10.0, 20.0], &mut grad);
        assert_eq!(grad, vec![10.5, 0.5, 0.5, 20.5]);
    }

    #[test]
    fn from_dense_drops_zeros() {
        let csr = CsrMatrix::from_dense(&[0.0, 1.0, 0.0, -2.0], 2, 2);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense(), vec![0.0, 1.0, 0.0, -2.0]);
    }

    #[test]
    fn empty_csr_density_is_one() {
        let csr = CsrMatrix::from_dense(&[], 0, 0);
        assert_eq!(csr.density(), 1.0);
        assert_eq!(csr.nnz(), 0);
    }
}
