//! Descriptions of a model's prunable parameter tensors.

use serde::{Deserialize, Serialize};

/// One prunable parameter tensor (e.g. a convolution's weight), identified by
/// name and flat length.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// Number of scalar weights in the tensor.
    pub len: usize,
}

/// Ordered list of a model's prunable tensors.
///
/// The order matches the order in which the model exposes its prunable
/// parameters; masks, density vectors and block partitions are all indexed
/// against this layout.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseLayout {
    layers: Vec<LayerSpec>,
}

impl SparseLayout {
    /// Builds a layout from `(name, len)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ft_sparse::SparseLayout;
    /// let l = SparseLayout::new(vec![("a".into(), 4), ("b".into(), 6)]);
    /// assert_eq!(l.num_layers(), 2);
    /// assert_eq!(l.total_len(), 10);
    /// ```
    pub fn new(specs: Vec<(String, usize)>) -> Self {
        SparseLayout {
            layers: specs
                .into_iter()
                .map(|(name, len)| LayerSpec { name, len })
                .collect(),
        }
    }

    /// Number of prunable tensors.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of prunable scalars across all tensors.
    pub fn total_len(&self) -> usize {
        self.layers.iter().map(|l| l.len).sum()
    }

    /// The spec of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &LayerSpec {
        &self.layers[i]
    }

    /// Iterates over the layer specs in order.
    pub fn iter(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter()
    }

    /// Lengths of each layer, in order.
    pub fn lens(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_accessors() {
        let l = SparseLayout::new(vec![("x".into(), 3), ("y".into(), 7)]);
        assert_eq!(l.num_layers(), 2);
        assert_eq!(l.total_len(), 10);
        assert_eq!(l.layer(1).name, "y");
        assert_eq!(l.lens(), vec![3, 7]);
        assert_eq!(l.iter().count(), 2);
    }

    #[test]
    fn empty_layout() {
        let l = SparseLayout::new(vec![]);
        assert_eq!(l.num_layers(), 0);
        assert_eq!(l.total_len(), 0);
    }
}
