//! Sparsity primitives for the FedTiny reproduction.
//!
//! This crate is deliberately model-agnostic: it manipulates *flat per-layer
//! parameter buffers* described by a [`SparseLayout`], so the same machinery
//! serves every model in `ft-nn` and every pruning method in `ft-pruning`.
//!
//! Contents:
//! - [`SparseLayout`] / [`Mask`] — per-prunable-tensor binary masks with
//!   density accounting.
//! - [`Codec`] / [`Payload`] / [`WireCtx`] — the typed wire formats of the
//!   device ↔ server update exchange (dense, mask-structured sparse,
//!   int8-quantized, top-k with error feedback), with exact measured byte
//!   sizes.
//! - [`CsrMatrix`] — the row-compressed weight representation the sparse
//!   execution engine packs masked weights into (kernels live in
//!   `ft-tensor`; dispatch lives in `ft-nn`).
//! - [`BsrMatrix`] — the block-sparse (tiled) sibling of [`CsrMatrix`] for
//!   masks whose alive coordinates cluster; `ft-nn` routes forward passes
//!   through it when the average tile fill is high enough.
//! - [`TopKBuffer`] — the `O(k)` streaming buffer of Sec. III-D the devices
//!   use to keep only the top-k gradient magnitudes of pruned coordinates.
//! - [`cosine_prune_count`] — the paper's pruning-number schedule
//!   `a_t^l = 0.15 (1 + cos(tπ / (R_stop · E))) · n_l`.
//! - [`magnitude_mask`] / [`random_mask`] / [`noisy_density_vector`] — mask
//!   constructors used for coarse pruning and candidate-pool generation.
//!
//! # Examples
//!
//! ```
//! use ft_sparse::{Mask, SparseLayout};
//!
//! let layout = SparseLayout::new(vec![("conv1".into(), 8), ("fc".into(), 8)]);
//! let mut mask = Mask::ones(&layout);
//! mask.set(0, 3, false);
//! assert_eq!(mask.ones_count(), 15);
//! assert!((mask.density() - 15.0 / 16.0).abs() < 1e-6);
//! ```

mod bsr;
mod codec;
mod layout;
mod mask;
mod prune;
mod schedule;
mod topk;

pub use bsr::BsrMatrix;
pub use codec::{
    sparse_index_width, topk_pairs_encoded_len, Codec, DecodeError, Payload, PayloadView,
    ShardPlan, WireCtx, WireReader, PAYLOAD_HEADER_BYTES,
};
pub use layout::{CsrMatrix, LayerSpec, SparseLayout};
pub use mask::Mask;
pub use prune::{
    magnitude_mask, magnitude_mask_global, noisy_density_vector, random_mask,
    uniform_density_vector,
};
pub use schedule::{cosine_prune_count, PruneSchedule};
pub use topk::TopKBuffer;
