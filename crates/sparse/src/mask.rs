//! Binary masks over a model's prunable parameters.

use crate::SparseLayout;
use serde::{Deserialize, Serialize};

/// A binary mask over every prunable tensor of a model.
///
/// `true` means the weight survives; `false` means it is pruned. The mask is
/// structured per layer so that layer-wise operations (the unit of FedTiny's
/// progressive pruning) are cheap and explicit.
///
/// # Examples
///
/// ```
/// use ft_sparse::{Mask, SparseLayout};
///
/// let layout = SparseLayout::new(vec![("conv".into(), 4), ("fc".into(), 2)]);
/// let mut mask = Mask::ones(&layout);
/// mask.set(0, 1, false);
/// mask.set(0, 3, false);
/// assert_eq!(mask.layer_ones(0), 2);
/// assert!((mask.density() - 4.0 / 6.0).abs() < 1e-6);
///
/// // Zero the pruned weights of layer 0 in place.
/// let mut weights = vec![1.0, 2.0, 3.0, 4.0];
/// mask.apply_layer(0, &mut weights);
/// assert_eq!(weights, vec![1.0, 0.0, 3.0, 0.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mask {
    layers: Vec<Vec<bool>>,
}

impl Mask {
    /// All-ones (dense) mask for a layout.
    pub fn ones(layout: &SparseLayout) -> Self {
        Mask {
            layers: layout.iter().map(|l| vec![true; l.len]).collect(),
        }
    }

    /// All-zeros mask for a layout.
    pub fn zeros(layout: &SparseLayout) -> Self {
        Mask {
            layers: layout.iter().map(|l| vec![false; l.len]).collect(),
        }
    }

    /// Builds a mask directly from per-layer boolean vectors.
    pub fn from_layers(layers: Vec<Vec<bool>>) -> Self {
        Mask { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The boolean vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &[bool] {
        &self.layers[l]
    }

    /// Mutable access to the boolean vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_mut(&mut self, l: usize) -> &mut Vec<bool> {
        &mut self.layers[l]
    }

    /// Sets one bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set(&mut self, layer: usize, idx: usize, alive: bool) {
        self.layers[layer][idx] = alive;
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, layer: usize, idx: usize) -> bool {
        self.layers[layer][idx]
    }

    /// Number of surviving weights across all layers.
    pub fn ones_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Number of surviving weights in layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_ones(&self, l: usize) -> usize {
        self.layers[l].iter().filter(|&&b| b).count()
    }

    /// Total number of maskable weights.
    pub fn total_len(&self) -> usize {
        self.layers.iter().map(|l| l.len()).sum()
    }

    /// Overall density: surviving / total. Returns 1.0 for an empty mask.
    pub fn density(&self) -> f32 {
        let total = self.total_len();
        if total == 0 {
            1.0
        } else {
            self.ones_count() as f32 / total as f32
        }
    }

    /// Density of layer `l`. Returns 1.0 for an empty layer.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_density(&self, l: usize) -> f32 {
        let len = self.layers[l].len();
        if len == 0 {
            1.0
        } else {
            self.layer_ones(l) as f32 / len as f32
        }
    }

    /// Applies the mask to per-layer weight buffers, zeroing pruned entries.
    ///
    /// `weights[l]` must have the same length as mask layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if the number of layers or any layer length differs.
    pub fn apply(&self, weights: &mut [&mut [f32]]) {
        assert_eq!(
            weights.len(),
            self.layers.len(),
            "mask/weights layer count mismatch"
        );
        for (w, m) in weights.iter_mut().zip(self.layers.iter()) {
            assert_eq!(w.len(), m.len(), "mask/weights length mismatch");
            for (v, &alive) in w.iter_mut().zip(m.iter()) {
                if !alive {
                    *v = 0.0;
                }
            }
        }
    }

    /// Applies a single layer of the mask to one flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `l` is out of range.
    pub fn apply_layer(&self, l: usize, weights: &mut [f32]) {
        let m = &self.layers[l];
        assert_eq!(weights.len(), m.len(), "mask/weights length mismatch");
        for (v, &alive) in weights.iter_mut().zip(m.iter()) {
            if !alive {
                *v = 0.0;
            }
        }
    }

    /// Indices of pruned (dead) entries in layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn pruned_indices(&self, l: usize) -> Vec<usize> {
        self.layers[l]
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (!b).then_some(i))
            .collect()
    }

    /// Indices of surviving (alive) entries in layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn alive_indices(&self, l: usize) -> Vec<usize> {
        self.layers[l]
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Checks this mask is structurally compatible with a layout.
    pub fn matches_layout(&self, layout: &SparseLayout) -> bool {
        self.layers.len() == layout.num_layers()
            && self
                .layers
                .iter()
                .zip(layout.iter())
                .all(|(m, spec)| m.len() == spec.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SparseLayout {
        SparseLayout::new(vec![("a".into(), 4), ("b".into(), 6)])
    }

    #[test]
    fn ones_and_zeros() {
        let l = layout();
        assert_eq!(Mask::ones(&l).density(), 1.0);
        assert_eq!(Mask::zeros(&l).density(), 0.0);
        assert_eq!(Mask::ones(&l).ones_count(), 10);
    }

    #[test]
    fn set_get_and_counts() {
        let mut m = Mask::ones(&layout());
        m.set(1, 5, false);
        m.set(1, 0, false);
        assert!(!m.get(1, 5));
        assert!(m.get(0, 0));
        assert_eq!(m.layer_ones(1), 4);
        assert_eq!(m.ones_count(), 8);
        assert!((m.layer_density(1) - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn apply_zeroes_pruned_weights() {
        let mut m = Mask::ones(&layout());
        m.set(0, 1, false);
        let mut wa = vec![1.0, 2.0, 3.0, 4.0];
        let mut wb = vec![9.0; 6];
        m.apply(&mut [&mut wa, &mut wb]);
        assert_eq!(wa, vec![1.0, 0.0, 3.0, 4.0]);
        assert_eq!(wb, vec![9.0; 6]);
    }

    #[test]
    fn apply_layer_single() {
        let mut m = Mask::ones(&layout());
        m.set(0, 0, false);
        let mut w = vec![5.0, 6.0, 7.0, 8.0];
        m.apply_layer(0, &mut w);
        assert_eq!(w, vec![0.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn index_queries() {
        let mut m = Mask::ones(&layout());
        m.set(0, 2, false);
        assert_eq!(m.pruned_indices(0), vec![2]);
        assert_eq!(m.alive_indices(0), vec![0, 1, 3]);
    }

    #[test]
    fn layout_compatibility() {
        let l = layout();
        assert!(Mask::ones(&l).matches_layout(&l));
        let other = SparseLayout::new(vec![("a".into(), 4)]);
        assert!(!Mask::ones(&l).matches_layout(&other));
    }

    #[test]
    fn empty_mask_density_is_one() {
        let m = Mask::from_layers(vec![]);
        assert_eq!(m.density(), 1.0);
    }
}
