//! Mask constructors: magnitude pruning, random pruning, and the
//! uniform-noise layer-wise density vectors used for candidate-pool
//! generation (Sec. IV-A2).

use crate::{Mask, SparseLayout, TopKBuffer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Number of weights kept in a layer of `len` weights at density `d`.
///
/// Uses `ceil` so any strictly positive density keeps at least one weight —
/// a fully disconnected layer would make the loss undefined rather than
/// merely bad.
fn keep_count(len: usize, d: f32) -> usize {
    if len == 0 || d <= 0.0 {
        return 0;
    }
    // f32→f64 widening makes e.g. 0.4 * 5 come out as 2.0000000298; snap to
    // the nearest integer when within tolerance before taking the ceiling.
    let x = d as f64 * len as f64;
    let snapped = if (x - x.round()).abs() < 1e-6 {
        x.round()
    } else {
        x.ceil()
    };
    (snapped as usize).min(len)
}

/// A density vector assigning the same density to every layer.
pub fn uniform_density_vector(layout: &SparseLayout, density: f32) -> Vec<f32> {
    vec![density.clamp(0.0, 1.0); layout.num_layers()]
}

/// Samples a layer-wise density vector `d_l = d_target + e_l` with
/// `e_l ~ U(-spread·d_target, +spread·d_target)`, accepted only when the
/// size-weighted total density does not exceed `d_target` (the paper's
/// Uniform Noise candidate strategy). After `max_tries` rejections the last
/// sample is rescaled to satisfy the constraint, so the function always
/// terminates.
///
/// # Panics
///
/// Panics if `d_target` is not in `(0, 1]` or `spread` is negative.
pub fn noisy_density_vector<R: Rng + ?Sized>(
    rng: &mut R,
    layout: &SparseLayout,
    d_target: f32,
    spread: f32,
) -> Vec<f32> {
    assert!(
        d_target > 0.0 && d_target <= 1.0,
        "target density must be in (0,1], got {d_target}"
    );
    assert!(spread >= 0.0, "noise spread must be non-negative");
    let lens = layout.lens();
    let total: usize = lens.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let max_tries = 32;
    let mut last = Vec::new();
    for _ in 0..max_tries {
        let d: Vec<f32> = lens
            .iter()
            .map(|_| {
                let e = if spread > 0.0 {
                    rng.gen_range(-spread * d_target..spread * d_target)
                } else {
                    0.0
                };
                (d_target + e).clamp(0.0, 1.0)
            })
            .collect();
        let overall = overall_density(&d, &lens);
        if overall <= d_target {
            return d;
        }
        last = d;
    }
    // Rescale the final rejected sample to meet the budget exactly.
    let overall = overall_density(&last, &lens);
    let scale = d_target / overall;
    last.iter_mut()
        .for_each(|d| *d = (*d * scale).clamp(0.0, 1.0));
    last
}

/// Size-weighted overall density of a layer-wise density vector.
pub fn overall_density(densities: &[f32], lens: &[usize]) -> f32 {
    let total: usize = lens.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let kept: f32 = densities
        .iter()
        .zip(lens.iter())
        .map(|(&d, &n)| d * n as f32)
        .sum();
    kept / total as f32
}

/// Magnitude-prunes each layer to its own density: keeps the
/// `ceil(d_l · n_l)` weights with the largest `|w|` per layer.
///
/// # Panics
///
/// Panics if the number of weight buffers or densities mismatches the
/// layout, or any buffer length differs from its spec.
pub fn magnitude_mask(layout: &SparseLayout, weights: &[&[f32]], densities: &[f32]) -> Mask {
    assert_eq!(
        weights.len(),
        layout.num_layers(),
        "weights/layout layer count mismatch"
    );
    assert_eq!(
        densities.len(),
        layout.num_layers(),
        "densities/layout layer count mismatch"
    );
    let mut layers = Vec::with_capacity(weights.len());
    for (l, (&w, &d)) in weights.iter().zip(densities.iter()).enumerate() {
        assert_eq!(
            w.len(),
            layout.layer(l).len,
            "weight buffer length mismatch at layer {l}"
        );
        let keep = keep_count(w.len(), d);
        let mut m = vec![false; w.len()];
        let mut buf = TopKBuffer::new(keep);
        buf.extend_from_slice(w);
        for (idx, _) in buf.into_sorted() {
            m[idx] = true;
        }
        layers.push(m);
    }
    Mask::from_layers(layers)
}

/// Magnitude-prunes *globally*: keeps the `ceil(d · N)` weights with the
/// largest `|w|` across all layers together. Used by LotteryFL-style
/// iterative magnitude pruning.
///
/// # Panics
///
/// Panics on layout/buffer mismatches (see [`magnitude_mask`]).
pub fn magnitude_mask_global(layout: &SparseLayout, weights: &[&[f32]], density: f32) -> Mask {
    assert_eq!(
        weights.len(),
        layout.num_layers(),
        "weights/layout layer count mismatch"
    );
    let total = layout.total_len();
    let keep = keep_count(total, density);
    let mut buf = TopKBuffer::new(keep);
    let mut offset = 0usize;
    for (l, &w) in weights.iter().enumerate() {
        assert_eq!(
            w.len(),
            layout.layer(l).len,
            "weight buffer length mismatch at layer {l}"
        );
        for (i, &v) in w.iter().enumerate() {
            buf.push(offset + i, v);
        }
        offset += w.len();
    }
    let mut layers: Vec<Vec<bool>> = layout.iter().map(|s| vec![false; s.len]).collect();
    let lens = layout.lens();
    for (flat, _) in buf.into_sorted() {
        let (layer, idx) = unflatten(flat, &lens);
        layers[layer][idx] = true;
    }
    Mask::from_layers(layers)
}

/// Random mask at per-layer densities, used for FedDST's random initial
/// pruning and as a control in tests.
pub fn random_mask<R: Rng + ?Sized>(rng: &mut R, layout: &SparseLayout, densities: &[f32]) -> Mask {
    assert_eq!(
        densities.len(),
        layout.num_layers(),
        "densities/layout layer count mismatch"
    );
    let mut layers = Vec::with_capacity(layout.num_layers());
    for (spec, &d) in layout.iter().zip(densities.iter()) {
        let keep = keep_count(spec.len, d);
        let mut idx: Vec<usize> = (0..spec.len).collect();
        idx.shuffle(rng);
        let mut m = vec![false; spec.len];
        for &i in idx.iter().take(keep) {
            m[i] = true;
        }
        layers.push(m);
    }
    Mask::from_layers(layers)
}

fn unflatten(flat: usize, lens: &[usize]) -> (usize, usize) {
    let mut rem = flat;
    for (l, &n) in lens.iter().enumerate() {
        if rem < n {
            return (l, rem);
        }
        rem -= n;
    }
    panic!("flat index {flat} out of range");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layout() -> SparseLayout {
        SparseLayout::new(vec![("a".into(), 10), ("b".into(), 20)])
    }

    #[test]
    fn magnitude_keeps_largest_per_layer() {
        let l = SparseLayout::new(vec![("a".into(), 5)]);
        let w = [0.1f32, -0.9, 0.5, 0.05, -0.3];
        let m = magnitude_mask(&l, &[&w], &[0.4]);
        // ceil(0.4*5)=2 -> keep |-0.9| and |0.5|
        assert_eq!(m.layer(0), &[false, true, true, false, false]);
    }

    #[test]
    fn magnitude_global_crosses_layers() {
        let l = SparseLayout::new(vec![("a".into(), 2), ("b".into(), 2)]);
        let wa = [0.9f32, 0.1];
        let wb = [0.8f32, 0.7];
        let m = magnitude_mask_global(&l, &[&wa, &wb], 0.5);
        // keep top ceil(0.5*4)=2: 0.9 (a0) and 0.8 (b0)
        assert_eq!(m.layer(0), &[true, false]);
        assert_eq!(m.layer(1), &[true, false]);
    }

    #[test]
    fn keep_count_ceils_and_clamps() {
        assert_eq!(keep_count(100, 0.015), 2);
        assert_eq!(keep_count(100, 0.0), 0);
        assert_eq!(keep_count(100, 1.5), 100);
        assert_eq!(keep_count(0, 0.5), 0);
        assert_eq!(keep_count(1000, 0.001), 1);
        // ceil keeps at least one weight at any positive density.
        assert_eq!(keep_count(10, 0.001), 1);
    }

    #[test]
    fn uniform_vector() {
        let v = uniform_density_vector(&layout(), 0.25);
        assert_eq!(v, vec![0.25, 0.25]);
        assert_eq!(uniform_density_vector(&layout(), 2.0), vec![1.0, 1.0]);
    }

    #[test]
    fn noisy_vector_respects_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = layout();
        for _ in 0..50 {
            let d = noisy_density_vector(&mut rng, &l, 0.1, 0.5);
            let overall = overall_density(&d, &l.lens());
            assert!(
                overall <= 0.1 + 1e-5,
                "overall density {overall} exceeds target"
            );
            assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn noisy_vector_zero_spread_is_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d = noisy_density_vector(&mut rng, &layout(), 0.2, 0.0);
        assert_eq!(d, vec![0.2, 0.2]);
    }

    #[test]
    #[should_panic(expected = "target density")]
    fn noisy_vector_rejects_zero_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = noisy_density_vector(&mut rng, &layout(), 0.0, 0.1);
    }

    #[test]
    fn random_mask_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let m = random_mask(&mut rng, &layout(), &[0.5, 0.1]);
        assert_eq!(m.layer_ones(0), 5);
        assert_eq!(m.layer_ones(1), 2); // ceil(0.1*20)=2
    }

    #[test]
    fn random_masks_differ_across_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let big = SparseLayout::new(vec![("a".into(), 100)]);
        let m1 = random_mask(&mut rng, &big, &[0.3]);
        let m2 = random_mask(&mut rng, &big, &[0.3]);
        assert_ne!(m1, m2);
    }

    proptest! {
        /// Magnitude masks hit the requested per-layer keep counts exactly.
        #[test]
        fn magnitude_mask_counts(d in 0.0f32..1.0, n in 1usize..200) {
            let l = SparseLayout::new(vec![("x".into(), n)]);
            let w: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let m = magnitude_mask(&l, &[&w], &[d]);
            let expect = if d <= 0.0 { 0 } else { ((d as f64 * n as f64).ceil() as usize).min(n) };
            prop_assert_eq!(m.layer_ones(0), expect);
        }

        /// Every weight kept by a magnitude mask is at least as large as
        /// every dropped weight (per layer).
        #[test]
        fn magnitude_mask_dominates(n in 2usize..100, seed in 0u64..50) {
            let l = SparseLayout::new(vec![("x".into(), n)]);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let w: Vec<f32> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0)).collect();
            let m = magnitude_mask(&l, &[&w], &[0.5]);
            let kept_min = m.alive_indices(0).iter().map(|&i| w[i].abs()).fold(f32::INFINITY, f32::min);
            let dropped_max = m.pruned_indices(0).iter().map(|&i| w[i].abs()).fold(0.0f32, f32::max);
            prop_assert!(kept_min >= dropped_max - 1e-6);
        }
    }
}
