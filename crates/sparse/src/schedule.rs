//! The paper's pruning-number schedule.
//!
//! Section IV-A2: the number of parameters grown and pruned on layer `l` at
//! iteration `t` is `a_t^l = 0.15 (1 + cos(t π / (R_stop · E))) · n_l`, where
//! `n_l` is the number of *unpruned* parameters in the layer, `E` the local
//! iterations per round, and `R_stop` the round after which adjustment stops.

use serde::{Deserialize, Serialize};

/// Fraction coefficient from the paper (`0.15`).
pub const COSINE_COEFF: f32 = 0.15;

/// Computes `a_t^l` — how many coordinates to grow *and* prune on a layer.
///
/// `t` is the global iteration counter (`rounds_so_far * local_iters`),
/// `horizon` is `R_stop * E`, and `alive` is the current number of unpruned
/// parameters in the layer. Returns 0 once `t` exceeds the horizon, and never
/// returns more than `alive` (you cannot drop more weights than survive).
///
/// # Examples
///
/// ```
/// use ft_sparse::cosine_prune_count;
/// // At t=0 the cosine term is 2, so a = 0.30 * alive.
/// assert_eq!(cosine_prune_count(0, 100, 1000), 300);
/// // At the horizon the cosine term is 0.
/// assert_eq!(cosine_prune_count(100, 100, 1000), 0);
/// ```
pub fn cosine_prune_count(t: usize, horizon: usize, alive: usize) -> usize {
    if horizon == 0 || t > horizon || alive == 0 {
        return 0;
    }
    let phase = t as f64 * std::f64::consts::PI / horizon as f64;
    let frac = COSINE_COEFF as f64 * (1.0 + phase.cos());
    ((frac * alive as f64).round() as usize).min(alive)
}

/// A full pruning schedule: when adjustments happen and how large they are.
///
/// Shared by FedTiny, PruneFL and FedDST (Sec. IV-A3 uses the same schedule
/// for all iterative methods).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneSchedule {
    /// Rounds of fine-tuning between two pruning adjustments (`ΔR`).
    pub delta_r: usize,
    /// Round after which pruning stops and only fine-tuning continues
    /// (`R_stop`).
    pub r_stop: usize,
    /// Local iterations per round (`E`), used to convert rounds to the
    /// iteration counter `t` of the cosine schedule.
    pub local_iters: usize,
}

impl PruneSchedule {
    /// The paper's defaults: `ΔR = 10`, `R_stop = 100`.
    pub fn paper_default(local_iters: usize) -> Self {
        PruneSchedule {
            delta_r: 10,
            r_stop: 100,
            local_iters,
        }
    }

    /// A schedule proportional to the paper's, scaled to `rounds` total FL
    /// rounds: `R_stop = rounds/3` and `ΔR = rounds/30`, with `ΔR` floored
    /// at 2 so short runs keep fine-tuning recovery rounds between
    /// adjustments (adjusting every round replaces up to 30% of the weights
    /// with no recovery and destroys training). At the paper's 300 rounds
    /// this reproduces `ΔR = 10, R_stop = 100`.
    pub fn scaled_for(rounds: usize, local_iters: usize) -> Self {
        let r_stop = (rounds / 3).max(1);
        PruneSchedule {
            delta_r: (rounds / 30).max(2).min(r_stop.max(2)),
            r_stop,
            local_iters,
        }
    }

    /// Whether a pruning adjustment happens at `round` (0-based).
    ///
    /// Matches Alg. 2 line 10: `t mod ΔR·E == 0 && t <= E·R_stop`, with
    /// `t = round · E`.
    pub fn adjusts_at(&self, round: usize) -> bool {
        if self.delta_r == 0 {
            return false;
        }
        round.is_multiple_of(self.delta_r) && round <= self.r_stop
    }

    /// The `a_t^l` count for a layer with `alive` surviving weights at
    /// `round`.
    pub fn count_at(&self, round: usize, alive: usize) -> usize {
        let t = round * self.local_iters;
        let horizon = self.r_stop * self.local_iters;
        cosine_prune_count(t, horizon, alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints() {
        assert_eq!(cosine_prune_count(0, 50, 100), 30);
        assert_eq!(cosine_prune_count(50, 50, 100), 0);
        // Midpoint: cos(pi/2) = 0 → 0.15 * alive.
        assert_eq!(cosine_prune_count(25, 50, 100), 15);
    }

    #[test]
    fn beyond_horizon_is_zero() {
        assert_eq!(cosine_prune_count(51, 50, 100), 0);
        assert_eq!(cosine_prune_count(1000, 50, 100), 0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(cosine_prune_count(0, 0, 100), 0);
        assert_eq!(cosine_prune_count(0, 50, 0), 0);
    }

    #[test]
    fn schedule_adjustment_rounds() {
        let s = PruneSchedule {
            delta_r: 10,
            r_stop: 100,
            local_iters: 5,
        };
        assert!(s.adjusts_at(0));
        assert!(s.adjusts_at(10));
        assert!(s.adjusts_at(100));
        assert!(!s.adjusts_at(5));
        assert!(!s.adjusts_at(110)); // past R_stop
    }

    #[test]
    fn schedule_count_decreases_monotonically() {
        let s = PruneSchedule::paper_default(5);
        let a0 = s.count_at(0, 10_000);
        let a50 = s.count_at(50, 10_000);
        let a100 = s.count_at(100, 10_000);
        assert!(a0 > a50 && a50 > a100, "{a0} {a50} {a100}");
        assert_eq!(a100, 0);
    }

    #[test]
    fn zero_delta_r_never_adjusts() {
        let s = PruneSchedule {
            delta_r: 0,
            r_stop: 100,
            local_iters: 5,
        };
        assert!(!s.adjusts_at(0));
    }

    proptest! {
        /// a_t^l never exceeds the number of alive weights and is
        /// non-negative by type.
        #[test]
        fn count_bounded_by_alive(t in 0usize..500, horizon in 1usize..500, alive in 0usize..100_000) {
            prop_assert!(cosine_prune_count(t, horizon, alive) <= alive);
        }

        /// Monotone non-increasing in t over the horizon (cosine decay).
        #[test]
        fn monotone_in_t(horizon in 2usize..300, alive in 1usize..50_000) {
            let mut prev = usize::MAX;
            for t in 0..=horizon {
                let a = cosine_prune_count(t, horizon, alive);
                prop_assert!(a <= prev);
                prev = a;
            }
        }
    }
}
