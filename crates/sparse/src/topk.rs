//! Streaming top-k selection with `O(k)` memory.
//!
//! Section III-D of the paper: devices keep a fixed-size buffer of the `k`
//! gradients of pruned parameters with the largest magnitude. When a new
//! gradient arrives and the buffer is full, it replaces the current minimum
//! if its magnitude is larger, otherwise it is discarded. Memory stays
//! `O(k)` regardless of layer size.

/// Fixed-capacity buffer retaining the `k` `(index, value)` pairs with the
/// largest `|value|` seen so far.
///
/// Backed by a binary min-heap keyed on `|value|`, so each push is
/// `O(log k)` and memory is exactly `O(k)`.
///
/// # Examples
///
/// ```
/// use ft_sparse::TopKBuffer;
///
/// let mut buf = TopKBuffer::new(2);
/// buf.push(0, 1.0);
/// buf.push(1, -5.0);
/// buf.push(2, 3.0);
/// let mut top = buf.into_sorted();
/// assert_eq!(top.len(), 2);
/// assert_eq!(top[0], (1, -5.0)); // largest magnitude first
/// assert_eq!(top[1], (2, 3.0));
/// ```
#[derive(Clone, Debug)]
pub struct TopKBuffer {
    k: usize,
    // Min-heap on |value|: heap[0] is the smallest-magnitude entry.
    heap: Vec<(usize, f32)>,
}

impl TopKBuffer {
    /// Creates a buffer retaining at most `k` entries. `k = 0` is allowed and
    /// results in a buffer that retains nothing.
    pub fn new(k: usize) -> Self {
        TopKBuffer {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Capacity `k` of the buffer.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers one `(index, value)` pair. Non-finite values are ignored.
    pub fn push(&mut self, index: usize, value: f32) {
        if self.k == 0 || !value.is_finite() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((index, value));
            self.sift_up(self.heap.len() - 1);
        } else if value.abs() > self.heap[0].1.abs() {
            self.heap[0] = (index, value);
            self.sift_down(0);
        }
    }

    /// Offers every element of a slice, using positions as indices.
    pub fn extend_from_slice(&mut self, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.push(i, v);
        }
    }

    /// Consumes the buffer, returning retained pairs sorted by descending
    /// `|value|` (ties broken by ascending index for determinism).
    pub fn into_sorted(self) -> Vec<(usize, f32)> {
        let mut v = self.heap;
        v.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// The smallest retained magnitude, if any.
    pub fn min_abs(&self) -> Option<f32> {
        self.heap.first().map(|&(_, v)| v.abs())
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].1.abs() < self.heap[parent].1.abs() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l].1.abs() < self.heap[smallest].1.abs() {
                smallest = l;
            }
            if r < n && self.heap[r].1.abs() < self.heap[smallest].1.abs() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_top_k_by_magnitude() {
        let mut buf = TopKBuffer::new(3);
        for (i, v) in [0.5f32, -2.0, 1.0, 0.1, 3.0, -0.7].iter().enumerate() {
            buf.push(i, *v);
        }
        let top = buf.into_sorted();
        let idx: Vec<usize> = top.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![4, 1, 2]); // 3.0, -2.0, 1.0
    }

    #[test]
    fn capacity_zero_retains_nothing() {
        let mut buf = TopKBuffer::new(0);
        buf.push(0, 100.0);
        assert!(buf.is_empty());
        assert!(buf.into_sorted().is_empty());
    }

    #[test]
    fn fewer_elements_than_k() {
        let mut buf = TopKBuffer::new(10);
        buf.push(3, 1.0);
        buf.push(7, -2.0);
        let top = buf.into_sorted();
        assert_eq!(top, vec![(7, -2.0), (3, 1.0)]);
    }

    #[test]
    fn ignores_non_finite() {
        let mut buf = TopKBuffer::new(2);
        buf.push(0, f32::NAN);
        buf.push(1, f32::INFINITY);
        buf.push(2, 1.0);
        assert_eq!(buf.into_sorted(), vec![(2, 1.0)]);
    }

    #[test]
    fn min_abs_tracks_threshold() {
        let mut buf = TopKBuffer::new(2);
        assert_eq!(buf.min_abs(), None);
        buf.push(0, -4.0);
        buf.push(1, 1.0);
        assert_eq!(buf.min_abs(), Some(1.0));
        buf.push(2, 2.0); // evicts 1.0
        assert_eq!(buf.min_abs(), Some(2.0));
    }

    #[test]
    fn extend_from_slice_uses_positions() {
        let mut buf = TopKBuffer::new(1);
        buf.extend_from_slice(&[0.0, 5.0, -1.0]);
        assert_eq!(buf.into_sorted(), vec![(1, 5.0)]);
    }

    proptest! {
        /// The buffer must agree with a full sort for any input.
        #[test]
        fn matches_full_sort(values in proptest::collection::vec(-100.0f32..100.0, 0..200), k in 0usize..20) {
            let mut buf = TopKBuffer::new(k);
            buf.extend_from_slice(&values);
            let got: Vec<usize> = buf.into_sorted().into_iter().map(|(i, _)| i).collect();

            let mut all: Vec<(usize, f32)> = values.iter().cloned().enumerate().collect();
            all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap().then(a.0.cmp(&b.0)));
            let expect: Vec<usize> = all.into_iter().take(k.min(values.len())).map(|(i, _)| i).collect();

            // Compare magnitudes rather than exact indices: equal-magnitude
            // ties may legitimately retain either index depending on arrival
            // order (the paper's buffer has the same property).
            let got_mags: Vec<f32> = got.iter().map(|&i| values[i].abs()).collect();
            let expect_mags: Vec<f32> = expect.iter().map(|&i| values[i].abs()).collect();
            prop_assert_eq!(got_mags, expect_mags);
        }

        /// Memory bound: the heap never exceeds k entries.
        #[test]
        fn never_exceeds_capacity(values in proptest::collection::vec(-10.0f32..10.0, 0..100), k in 0usize..10) {
            let mut buf = TopKBuffer::new(k);
            for (i, &v) in values.iter().enumerate() {
                buf.push(i, v);
                prop_assert!(buf.len() <= k);
            }
        }
    }
}
