//! Block-sparse (BSR) kernels over a borrowed view.
//!
//! BSR stores a matrix as square `block × block` tiles: `row_ptr` walks
//! *block rows*, `col_idx` names the *block column* of each stored tile, and
//! `vals` holds each tile dense and row-major. For masks whose alive
//! coordinates cluster into blocks (structured pruning), this buys the
//! sparse path dense inner loops — no per-entry index decode, and each
//! gathered `B` row is reused across the whole tile — at the cost of
//! computing the explicit zeros inside partially-alive tiles.
//!
//! Dead slots inside a stored tile hold `0.0` and are *multiplied, not
//! skipped*, exactly like the dense kernels treat pruned coordinates: a
//! structural hole contributes nothing to finite arithmetic, while `0 × NaN`
//! still propagates. CSR (which never touches dead coordinates) and BSR
//! therefore agree on finite inputs but intentionally differ on non-finite
//! ones — BSR matches the dense path's semantics.
//!
//! Kernels (only the forward-pass shapes; backward passes stay on CSR, whose
//! scatter/sampled shapes don't benefit from tiles):
//!
//! - [`bsr_spmm_into`]: `C += S · B` (conv forward)
//! - [`bsr_dsmm_nt_into`]: `C += A · Sᵀ` (linear forward)
//!
//! The `_rt` variants follow the workspace determinism contract: output rows
//! are split at block-row boundaries (so no tile straddles two workers) and
//! every worker runs the sequential loop body — parallel results are
//! bit-identical to sequential for any thread count.

use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// A borrowed block-sparse-row matrix of square `block × block` tiles.
///
/// `row_ptr` has `block_rows() + 1` entries; block row `b`'s tiles live at
/// `row_ptr[b]..row_ptr[b + 1]` in `col_idx` / `vals`, with tile `t`'s
/// values at `vals[t·block² ..][..block²]` (dense, row-major). Edge tiles
/// past `rows`/`cols` are zero-padded.
#[derive(Clone, Copy, Debug)]
pub struct BsrView<'a> {
    /// Number of rows of the logical dense matrix.
    pub rows: usize,
    /// Number of columns of the logical dense matrix.
    pub cols: usize,
    /// Tile edge length (tiles are `block × block`).
    pub block: usize,
    /// Tile-row start offsets (`block_rows() + 1` entries, last is the tile
    /// count).
    pub row_ptr: &'a [usize],
    /// Block-column index of each stored tile.
    pub col_idx: &'a [u32],
    /// Tile values, `block²` consecutive floats per stored tile.
    pub vals: &'a [f32],
}

impl<'a> BsrView<'a> {
    /// Number of stored tiles.
    pub fn blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of tile rows (`rows` rounded up to whole tiles).
    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.block)
    }

    /// Number of tile columns (`cols` rounded up to whole tiles).
    pub fn block_cols(&self) -> usize {
        self.cols.div_ceil(self.block)
    }

    /// Stored values including a tile's explicit zeros — the flop count a
    /// BSR kernel actually executes.
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Checks the structural invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(self.block > 0, "bsr block edge must be positive");
        assert_eq!(
            self.row_ptr.len(),
            self.block_rows() + 1,
            "bsr row_ptr must have block_rows + 1 entries"
        );
        assert_eq!(
            self.vals.len(),
            self.col_idx.len() * self.block * self.block,
            "bsr vals must hold block² floats per stored tile"
        );
        assert_eq!(
            *self.row_ptr.last().unwrap_or(&0),
            self.col_idx.len(),
            "bsr row_ptr must end at the tile count"
        );
        assert!(
            self.row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "bsr row_ptr must be non-decreasing"
        );
        debug_assert!(
            self.col_idx
                .iter()
                .all(|&c| (c as usize) < self.block_cols()),
            "bsr block-column index out of range"
        );
    }
}

/// `C += S[m×k] · B[k×n]` with `S` in BSR form.
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
pub fn bsr_spmm_into(s: BsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_bsr_spmm(&s, b, c);
    bsr_spmm_brows(s, b.data(), n, 0..s.block_rows(), c.data_mut());
}

/// [`bsr_spmm_into`] with the output fanned out over `rt`'s workers, split
/// at block-row boundaries. Bit-identical to the sequential kernel for any
/// thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`bsr_spmm_into`].
pub fn bsr_spmm_into_rt(rt: &Runtime, s: BsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_bsr_spmm(&s, b, c);
    let brows = s.block_rows();
    if !rt.should_parallelize(s.stored().saturating_mul(n)) || brows <= 1 {
        return bsr_spmm_brows(s, b.data(), n, 0..brows, c.data_mut());
    }
    let bd = b.data();
    let rows = s.rows;
    let block = s.block;
    let jobs = rt.split_at_offsets_mut(c.data_mut(), brows, |b| (b * block).min(rows) * n);
    rt.scatter(jobs, |(range, cchunk)| {
        bsr_spmm_brows(s, bd, n, range, cchunk);
    });
}

fn check_bsr_spmm(s: &BsrView<'_>, b: &Tensor, c: &Tensor) -> usize {
    s.validate();
    let (k, n) = dims2(b, "B");
    assert_eq!(k, s.cols, "bsr_spmm inner dims differ: {} vs {k}", s.cols);
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (s.rows, n), "bsr_spmm output shape mismatch");
    n
}

/// `C += S · B` over the block-row range `brows`; `cchunk` holds exactly the
/// logical `C` rows those block rows cover.
///
/// Per output element the accumulation order is: stored tiles ascending,
/// then tile columns ascending — a pure function of the structure, never of
/// the worker split. Full-width interior tiles take a four-column unrolled
/// path (`C`'s row is loaded/stored once per tile instead of once per tile
/// column); the unroll issues the same per-element add sequence as the
/// column-at-a-time fallback, so both paths are bit-identical.
fn bsr_spmm_brows(s: BsrView<'_>, bd: &[f32], n: usize, brows: Range<usize>, cchunk: &mut [f32]) {
    let bs = s.block;
    let row0 = (brows.start * bs).min(s.rows);
    for bi in brows {
        let rlo = bi * bs;
        let rhi = ((bi + 1) * bs).min(s.rows);
        for blk in s.row_ptr[bi]..s.row_ptr[bi + 1] {
            let jb = s.col_idx[blk] as usize * bs;
            let jw = (s.cols - jb).min(bs);
            let tile = &s.vals[blk * bs * bs..(blk + 1) * bs * bs];
            for r in rlo..rhi {
                let crow = &mut cchunk[(r - row0) * n..(r - row0 + 1) * n];
                let vrow = &tile[(r - rlo) * bs..][..jw];
                if jw == 4 {
                    let (v0, v1, v2, v3) = (vrow[0], vrow[1], vrow[2], vrow[3]);
                    let b0 = &bd[jb * n..][..n];
                    let b1 = &bd[(jb + 1) * n..][..n];
                    let b2 = &bd[(jb + 2) * n..][..n];
                    let b3 = &bd[(jb + 3) * n..][..n];
                    for (idx, cv) in crow.iter_mut().enumerate() {
                        let mut acc = *cv;
                        acc += v0 * b0[idx];
                        acc += v1 * b1[idx];
                        acc += v2 * b2[idx];
                        acc += v3 * b3[idx];
                        *cv = acc;
                    }
                } else {
                    for (cb, &v) in vrow.iter().enumerate() {
                        let brow = &bd[(jb + cb) * n..(jb + cb + 1) * n];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += v * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C += A[m×k] · Sᵀ` with `S` in BSR form (`S` is `[n×k]`, consumed
/// transposed).
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
pub fn bsr_dsmm_nt_into(a: &Tensor, s: BsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_bsr_dsmm_nt(a, &s, c);
    bsr_dsmm_nt_rows(a.data(), s, k, 0..m, c.data_mut());
}

/// [`bsr_dsmm_nt_into`] with the output rows fanned out over `rt`'s
/// workers. Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`bsr_dsmm_nt_into`].
pub fn bsr_dsmm_nt_into_rt(rt: &Runtime, a: &Tensor, s: BsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_bsr_dsmm_nt(a, &s, c);
    if !rt.should_parallelize(m.saturating_mul(s.stored())) || m <= 1 {
        return bsr_dsmm_nt_rows(a.data(), s, k, 0..m, c.data_mut());
    }
    let ad = a.data();
    let jobs = rt.split_rows_mut(c.data_mut(), s.rows.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        bsr_dsmm_nt_rows(ad, s, k, rows, cchunk);
    });
}

fn check_bsr_dsmm_nt(a: &Tensor, s: &BsrView<'_>, c: &Tensor) -> (usize, usize) {
    s.validate();
    let (m, k) = dims2(a, "A");
    assert_eq!(
        k, s.cols,
        "bsr_dsmm_nt inner dims differ: {k} vs {}",
        s.cols
    );
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, s.rows), "bsr_dsmm_nt output shape mismatch");
    (m, k)
}

/// `C += A · Sᵀ` restricted to the output-row range `rows`: each stored tile
/// contributes a dense `block`-wide dot slice gathered from `A`'s row.
fn bsr_dsmm_nt_rows(ad: &[f32], s: BsrView<'_>, k: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    let bs = s.block;
    for (local, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cchunk[local * s.rows..(local + 1) * s.rows];
        for bi in 0..s.block_rows() {
            let rlo = bi * bs;
            let rhi = ((bi + 1) * bs).min(s.rows);
            for blk in s.row_ptr[bi]..s.row_ptr[bi + 1] {
                let jb = s.col_idx[blk] as usize * bs;
                let jw = (s.cols - jb).min(bs);
                let tile = &s.vals[blk * bs * bs..(blk + 1) * bs * bs];
                let aslice = &arow[jb..jb + jw];
                for (r, cv) in crow[rlo..rhi].iter_mut().enumerate() {
                    let vrow = &tile[r * bs..][..jw];
                    let mut acc = 0.0f32;
                    for (&v, &av) in vrow.iter().zip(aslice.iter()) {
                        acc += v * av;
                    }
                    *cv += acc;
                }
            }
        }
    }
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, matmul_into, matmul_nt_into};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// An owned BSR fixture plus its dense equivalent: random tiles, some
    /// slots inside each stored tile dead (explicit 0.0).
    struct Fixture {
        rows: usize,
        cols: usize,
        block: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f32>,
        dense: Tensor,
    }

    impl Fixture {
        fn random(rows: usize, cols: usize, block: usize, density: f64, seed: u64) -> Self {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (brn, bcn) = (rows.div_ceil(block), cols.div_ceil(block));
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut vals = Vec::new();
            let mut dense = Tensor::zeros(&[rows, cols]);
            for br in 0..brn {
                for bc in 0..bcn {
                    if rng.gen_range(0.0f64..1.0) >= density {
                        continue;
                    }
                    col_idx.push(bc as u32);
                    for r in 0..block {
                        for c in 0..block {
                            let (gr, gc) = (br * block + r, bc * block + c);
                            let in_range = gr < rows && gc < cols;
                            let alive = in_range && rng.gen_range(0.0f64..1.0) < 0.8;
                            let v = if alive {
                                rng.gen_range(-1.0f32..1.0)
                            } else {
                                0.0
                            };
                            vals.push(v);
                            if in_range {
                                dense.data_mut()[gr * cols + gc] = v;
                            }
                        }
                    }
                }
                row_ptr.push(col_idx.len());
            }
            Fixture {
                rows,
                cols,
                block,
                row_ptr,
                col_idx,
                vals,
                dense,
            }
        }

        fn view(&self) -> BsrView<'_> {
            BsrView {
                rows: self.rows,
                cols: self.cols,
                block: self.block,
                row_ptr: &self.row_ptr,
                col_idx: &self.col_idx,
                vals: &self.vals,
            }
        }
    }

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
    }

    /// BSR spmm agrees with the dense GEMM for full and ragged-edge shapes
    /// (rows/cols not multiples of the tile edge) and non-4 tile sizes.
    #[test]
    fn bsr_spmm_matches_dense() {
        for (rows, cols, block, seed) in [(8, 12, 4, 1u64), (10, 11, 4, 2), (9, 7, 3, 3)] {
            let f = Fixture::random(rows, cols, block, 0.6, seed);
            let b = rand_t(&[cols, 6], seed + 10);
            let mut sparse = Tensor::ones(&[rows, 6]);
            let mut dense = Tensor::ones(&[rows, 6]);
            bsr_spmm_into(f.view(), &b, &mut sparse);
            matmul_into(&f.dense, &b, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-4);
        }
    }

    #[test]
    fn bsr_dsmm_nt_matches_dense() {
        for (rows, cols, block, seed) in [(8, 12, 4, 5u64), (10, 11, 4, 6), (9, 7, 3, 7)] {
            let f = Fixture::random(rows, cols, block, 0.6, seed);
            let a = rand_t(&[5, cols], seed + 10);
            let mut sparse = Tensor::ones(&[5, rows]);
            let mut dense = Tensor::ones(&[5, rows]);
            bsr_dsmm_nt_into(&a, f.view(), &mut sparse);
            matmul_nt_into(&a, &f.dense, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-4);
        }
    }

    /// The `_rt` variants are bit-identical to sequential at every thread
    /// count, including pools far beyond the block-row count.
    #[test]
    fn rt_variants_are_bit_identical() {
        let f = Fixture::random(13, 17, 4, 0.5, 11);
        let b = rand_t(&[17, 9], 12);
        let a = rand_t(&[6, 17], 13);
        let mut seq_spmm = Tensor::ones(&[13, 9]);
        bsr_spmm_into(f.view(), &b, &mut seq_spmm);
        let mut seq_dsmm = Tensor::ones(&[6, 13]);
        bsr_dsmm_nt_into(&a, f.view(), &mut seq_dsmm);
        for threads in [1usize, 2, 3, 64] {
            let rt = Runtime::exact(threads).with_min_work(0);
            let mut par = Tensor::ones(&[13, 9]);
            bsr_spmm_into_rt(&rt, f.view(), &b, &mut par);
            assert_eq!(seq_spmm.data(), par.data(), "bsr_spmm t={threads}");
            let mut par = Tensor::ones(&[6, 13]);
            bsr_dsmm_nt_into_rt(&rt, &a, f.view(), &mut par);
            assert_eq!(seq_dsmm.data(), par.data(), "bsr_dsmm_nt t={threads}");
        }
    }

    /// Dead slots are explicit zeros: like the dense path, `0 × NaN`
    /// propagates instead of being structurally skipped.
    #[test]
    fn dead_slots_multiply_like_dense() {
        // One stored tile, all slots dead (0.0).
        let row_ptr = [0usize, 1];
        let col_idx = [0u32];
        let vals = [0.0f32; 16];
        let s = BsrView {
            rows: 4,
            cols: 4,
            block: 4,
            row_ptr: &row_ptr,
            col_idx: &col_idx,
            vals: &vals,
        };
        let b = Tensor::from_vec(vec![f32::NAN; 4 * 3], &[4, 3]);
        let mut c = Tensor::zeros(&[4, 3]);
        bsr_spmm_into(s, &b, &mut c);
        assert!(c.data().iter().all(|v| v.is_nan()));
    }

    #[test]
    #[should_panic(expected = "row_ptr")]
    fn validate_rejects_malformed_view() {
        let v = BsrView {
            rows: 4,
            cols: 4,
            block: 4,
            row_ptr: &[0],
            col_idx: &[],
            vals: &[],
        };
        v.validate();
    }
}
