//! im2col / col2im transforms used to express convolution as matmul.

use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// Geometry of a 2-D convolution over a single sample.
///
/// The same geometry object drives the forward im2col, the backward
/// col2im, and the analytic FLOPs accounting in `ft-metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        checked_out(self.in_h, self.kernel, self.stride, self.pad)
    }

    /// Output width after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_w(&self) -> usize {
        checked_out(self.in_w, self.kernel, self.stride, self.pad)
    }

    /// Rows of the im2col matrix: `in_c * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

fn checked_out(dim: usize, k: usize, s: usize, p: usize) -> usize {
    let padded = dim + 2 * p;
    assert!(
        padded >= k && s > 0,
        "kernel {k} with stride {s} does not fit input dim {dim} (pad {p})"
    );
    (padded - k) / s + 1
}

/// Unfolds one sample `x` of shape `[in_c, in_h, in_w]` (given as a flat
/// slice) into a `[col_rows, col_cols]` matrix written into `out`.
///
/// Padding positions contribute zeros.
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry.
pub fn im2col(x: &[f32], g: &ConvGeom, out: &mut [f32]) {
    check_im2col(x, g, out);
    im2col_rows(x, g, 0..g.col_rows(), out);
}

/// [`im2col`] with the output rows (one per `(channel, kh, kw)` tap) fanned
/// out over `rt`'s workers. Rows are written independently, so the parallel
/// result is bit-identical to the sequential one.
///
/// # Panics
///
/// Panics on the same length mismatches as [`im2col`].
pub fn im2col_rt(rt: &Runtime, x: &[f32], g: &ConvGeom, out: &mut [f32]) {
    check_im2col(x, g, out);
    let rows = g.col_rows();
    if !rt.should_parallelize(out.len()) || rows <= 1 {
        return im2col_rows(x, g, 0..rows, out);
    }
    let cols = g.col_cols();
    let jobs = rt.split_rows_mut(out, cols.max(1));
    rt.scatter(jobs, |(range, chunk)| {
        im2col_rows(x, g, range, chunk);
    });
}

fn check_im2col(x: &[f32], g: &ConvGeom, out: &[f32]) {
    assert_eq!(
        x.len(),
        g.in_c * g.in_h * g.in_w,
        "im2col input length mismatch"
    );
    assert_eq!(
        out.len(),
        g.col_rows() * g.col_cols(),
        "im2col output length mismatch"
    );
}

/// Unfolds the output-row range `rows` (each row is one `(c, kh, kw)` tap in
/// lexicographic order); `chunk` holds exactly those rows.
fn im2col_rows(x: &[f32], g: &ConvGeom, rows: Range<usize>, chunk: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    let taps = g.kernel * g.kernel;
    for (local, row) in rows.enumerate() {
        let c = row / taps;
        let (kh, kw) = ((row % taps) / g.kernel, row % g.kernel);
        let plane = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        let dst = &mut chunk[local * cols..(local + 1) * cols];
        let mut idx = 0usize;
        for oy in 0..oh {
            let iy = (oy * g.stride + kh) as isize - g.pad as isize;
            for ox in 0..ow {
                let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                dst[idx] = if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w
                {
                    plane[iy as usize * g.in_w + ix as usize]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
    }
}

/// Folds a `[col_rows, col_cols]` matrix back into the input layout,
/// *accumulating* overlapping contributions into `out` (shape
/// `[in_c, in_h, in_w]` flat). This is the adjoint of [`im2col`] and is used
/// for the convolution input gradient.
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry.
pub fn col2im(col: &[f32], g: &ConvGeom, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        g.in_c * g.in_h * g.in_w,
        "col2im output length mismatch"
    );
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    assert_eq!(
        col.len(),
        g.col_rows() * cols,
        "col2im input length mismatch"
    );
    let mut row = 0usize;
    for c in 0..g.in_c {
        let base = c * g.in_h * g.in_w;
        for kh in 0..g.kernel {
            for kw in 0..g.kernel {
                let src = &col[row * cols..(row + 1) * cols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                            out[base + iy as usize * g.in_w + ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Reference direct convolution of one sample; used by tests to validate the
/// im2col path. `w` has shape `[out_c, in_c, k, k]` flat.
pub fn conv2d_direct(x: &[f32], w: &[f32], g: &ConvGeom, out_c: usize) -> Tensor {
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros(&[out_c, oh, ow]);
    let od = out.data_mut();
    for oc in 0..out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ic in 0..g.in_c {
                    for kh in 0..g.kernel {
                        for kw in 0..g.kernel {
                            let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if iy >= 0
                                && (iy as usize) < g.in_h
                                && ix >= 0
                                && (ix as usize) < g.in_w
                            {
                                let xv = x[(ic * g.in_h + iy as usize) * g.in_w + ix as usize];
                                let wv = w[((oc * g.in_c + ic) * g.kernel + kh) * g.kernel + kw];
                                acc += xv * wv;
                            }
                        }
                    }
                }
                od[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn geometry() {
        let g = ConvGeom {
            in_c: 3,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 8);
        assert_eq!(g.out_w(), 8);
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 64);
        let g2 = ConvGeom {
            in_c: 1,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(g2.out_h(), 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn geometry_rejects_oversized_kernel() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 2,
            in_w: 2,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let _ = g.out_h();
    }

    #[test]
    fn im2col_matmul_matches_direct_conv() {
        for (stride, pad) in [(1, 1), (2, 1), (1, 0)] {
            let g = ConvGeom {
                in_c: 3,
                in_h: 7,
                in_w: 6,
                kernel: 3,
                stride,
                pad,
            };
            let out_c = 4;
            let x = rand_vec(g.in_c * g.in_h * g.in_w, 10 + stride as u64);
            let w = rand_vec(out_c * g.col_rows(), 20 + pad as u64);
            let mut col = vec![0.0; g.col_rows() * g.col_cols()];
            im2col(&x, &g, &mut col);
            let wt = Tensor::from_vec(w.clone(), &[out_c, g.col_rows()]);
            let colt = Tensor::from_vec(col, &[g.col_rows(), g.col_cols()]);
            let got = wt.matmul(&colt);
            let expect = conv2d_direct(&x, &w, &g, out_c);
            assert_close(got.data(), expect.data(), 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        let g = ConvGeom {
            in_c: 2,
            in_h: 5,
            in_w: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let x = rand_vec(g.in_c * g.in_h * g.in_w, 33);
        let y = rand_vec(g.col_rows() * g.col_cols(), 44);
        let mut cx = vec![0.0; y.len()];
        im2col(&x, &g, &mut cx);
        let lhs: f32 = cx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut xy = vec![0.0; x.len()];
        col2im(&y, &g, &mut xy);
        let rhs: f32 = x.iter().zip(xy.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_rt_is_bit_identical() {
        let g = ConvGeom {
            in_c: 3,
            in_h: 7,
            in_w: 6,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let x = rand_vec(g.in_c * g.in_h * g.in_w, 55);
        let mut seq = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&x, &g, &mut seq);
        for threads in [1usize, 2, 5, 64] {
            let mut par = vec![0.0; seq.len()];
            im2col_rt(&Runtime::exact(threads).with_min_work(0), &x, &g, &mut par);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn col2im_accumulates() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            kernel: 3,
            stride: 1,
            pad: 0,
        };
        let col = vec![1.0; 9];
        let mut out = vec![5.0; 9];
        col2im(&col, &g, &mut out);
        assert_eq!(out, vec![6.0; 9]);
    }
}
