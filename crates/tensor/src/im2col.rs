//! im2col / col2im transforms used to express convolution as matmul.
//!
//! Two layouts exist: the classic per-sample `[col_rows, col_cols]` matrix,
//! and the *batched* layout `[col_rows, n · col_cols]` where sample `i`'s
//! columns occupy the contiguous column slice `i·cc..(i+1)·cc` of every row.
//! The batched layout lets one whole-batch GEMM replace a per-sample loop
//! without changing any per-output-element accumulation order (the GEMM `k`
//! dimension — `col_rows` — is untouched by batching).
//!
//! [`conv2d_fused_into_rt`] goes one step further and never materializes the
//! column matrix at all: an implicit-GEMM pack source generates the batched
//! im2col values directly into the GEMM's packed `B` panels, byte-identical
//! to packing a materialized matrix.

use crate::matmul::{gemm_src, GemmShape, PackBSource};
use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// Geometry of a 2-D convolution over a single sample.
///
/// The same geometry object drives the forward im2col, the backward
/// col2im, and the analytic FLOPs accounting in `ft-metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        checked_out(self.in_h, self.kernel, self.stride, self.pad)
    }

    /// Output width after the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_w(&self) -> usize {
        checked_out(self.in_w, self.kernel, self.stride, self.pad)
    }

    /// Rows of the im2col matrix: `in_c * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

fn checked_out(dim: usize, k: usize, s: usize, p: usize) -> usize {
    let padded = dim + 2 * p;
    assert!(
        padded >= k && s > 0,
        "kernel {k} with stride {s} does not fit input dim {dim} (pad {p})"
    );
    (padded - k) / s + 1
}

/// Unfolds one sample `x` of shape `[in_c, in_h, in_w]` (given as a flat
/// slice) into a `[col_rows, col_cols]` matrix written into `out`.
///
/// Padding positions contribute zeros.
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry.
pub fn im2col(x: &[f32], g: &ConvGeom, out: &mut [f32]) {
    check_im2col(x, g, out);
    im2col_rows(x, g, 0..g.col_rows(), out);
}

/// [`im2col`] with the output rows (one per `(channel, kh, kw)` tap) fanned
/// out over `rt`'s workers. Rows are written independently, so the parallel
/// result is bit-identical to the sequential one.
///
/// # Panics
///
/// Panics on the same length mismatches as [`im2col`].
pub fn im2col_rt(rt: &Runtime, x: &[f32], g: &ConvGeom, out: &mut [f32]) {
    check_im2col(x, g, out);
    let rows = g.col_rows();
    if !rt.should_parallelize(out.len()) || rows <= 1 {
        return im2col_rows(x, g, 0..rows, out);
    }
    let cols = g.col_cols();
    let jobs = rt.split_rows_mut(out, cols.max(1));
    rt.scatter(jobs, |(range, chunk)| {
        im2col_rows(x, g, range, chunk);
    });
}

fn check_im2col(x: &[f32], g: &ConvGeom, out: &[f32]) {
    assert_eq!(
        x.len(),
        g.in_c * g.in_h * g.in_w,
        "im2col input length mismatch"
    );
    assert_eq!(
        out.len(),
        g.col_rows() * g.col_cols(),
        "im2col output length mismatch"
    );
}

/// Decodes a column-matrix row index into its `(channel, kh, kw)` tap.
#[inline]
fn decode_tap(g: &ConvGeom, row: usize) -> (usize, usize, usize) {
    let taps = g.kernel * g.kernel;
    (row / taps, (row % taps) / g.kernel, row % g.kernel)
}

/// Writes one sample's full `col_cols` span for the tap `(kh, kw)` of
/// `plane` into `dst`.
///
/// For the ubiquitous `stride == 1` case each output row is a contiguous
/// input run flanked by padding zeros, so the inner loop becomes one
/// `copy_from_slice` plus two fills — every element is the same pure copy
/// (or structural zero) the scalar loop writes, just written faster.
#[inline]
fn fill_tap(
    plane: &[f32],
    g: &ConvGeom,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
) {
    if g.stride == 1 {
        // ox + kw - pad must land in [0, in_w): zeros before `lead`, a
        // contiguous copy until `hi`, zeros after.
        let lead = g.pad.saturating_sub(kw).min(ow);
        let hi = (g.in_w + g.pad).saturating_sub(kw).min(ow);
        let ix0 = (kw + lead).saturating_sub(g.pad);
        for oy in 0..oh {
            let row = &mut dst[oy * ow..(oy + 1) * ow];
            let iy = (oy + kh) as isize - g.pad as isize;
            if iy < 0 || iy as usize >= g.in_h {
                row.fill(0.0);
                continue;
            }
            row[..lead].fill(0.0);
            if hi > lead {
                row[lead..hi].copy_from_slice(&plane[iy as usize * g.in_w + ix0..][..hi - lead]);
            }
            row[hi..].fill(0.0);
        }
        return;
    }
    let mut idx = 0usize;
    for oy in 0..oh {
        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
        for ox in 0..ow {
            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
            dst[idx] = if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                plane[iy as usize * g.in_w + ix as usize]
            } else {
                0.0
            };
            idx += 1;
        }
    }
}

/// Unfolds the output-row range `rows` (each row is one `(c, kh, kw)` tap in
/// lexicographic order); `chunk` holds exactly those rows.
fn im2col_rows(x: &[f32], g: &ConvGeom, rows: Range<usize>, chunk: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    for (local, row) in rows.enumerate() {
        let (c, kh, kw) = decode_tap(g, row);
        let plane = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        fill_tap(
            plane,
            g,
            oh,
            ow,
            kh,
            kw,
            &mut chunk[local * cols..(local + 1) * cols],
        );
    }
}

/// Unfolds a whole batch `x` of shape `[n, in_c, in_h, in_w]` (flat) into
/// the batched column layout `[col_rows, n · col_cols]`: sample `i`'s
/// per-sample im2col matrix occupies the column slice `i·cc..(i+1)·cc` of
/// every row. Each output element is a pure copy (or structural zero), so
/// the batched matrix is byte-identical to `n` per-sample [`im2col`] calls.
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry.
pub fn im2col_batched(x: &[f32], n: usize, g: &ConvGeom, out: &mut [f32]) {
    check_im2col_batched(x, n, g, out);
    im2col_batched_rows(x, n, g, 0..g.col_rows(), out);
}

/// [`im2col_batched`] with the output rows fanned out over `rt`'s workers;
/// bit-identical to the sequential form.
///
/// # Panics
///
/// Panics on the same length mismatches as [`im2col_batched`].
pub fn im2col_batched_rt(rt: &Runtime, x: &[f32], n: usize, g: &ConvGeom, out: &mut [f32]) {
    check_im2col_batched(x, n, g, out);
    let rows = g.col_rows();
    if !rt.should_parallelize(out.len()) || rows <= 1 {
        return im2col_batched_rows(x, n, g, 0..rows, out);
    }
    let width = n * g.col_cols();
    let jobs = rt.split_rows_mut(out, width.max(1));
    rt.scatter(jobs, |(range, chunk)| {
        im2col_batched_rows(x, n, g, range, chunk);
    });
}

fn check_im2col_batched(x: &[f32], n: usize, g: &ConvGeom, out: &[f32]) {
    assert_eq!(
        x.len(),
        n * g.in_c * g.in_h * g.in_w,
        "im2col_batched input length mismatch"
    );
    assert_eq!(
        out.len(),
        g.col_rows() * n * g.col_cols(),
        "im2col_batched output length mismatch"
    );
}

fn im2col_batched_rows(x: &[f32], n: usize, g: &ConvGeom, rows: Range<usize>, chunk: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cc = oh * ow;
    let plane_len = g.in_h * g.in_w;
    let sample_len = g.in_c * plane_len;
    for (local, row) in rows.enumerate() {
        let (c, kh, kw) = decode_tap(g, row);
        let dst_row = &mut chunk[local * n * cc..(local + 1) * n * cc];
        for i in 0..n {
            let plane = &x[i * sample_len + c * plane_len..][..plane_len];
            fill_tap(plane, g, oh, ow, kh, kw, &mut dst_row[i * cc..(i + 1) * cc]);
        }
    }
}

/// Folds a `[col_rows, col_cols]` matrix back into the input layout,
/// *accumulating* overlapping contributions into `out` (shape
/// `[in_c, in_h, in_w]` flat). This is the adjoint of [`im2col`] and is used
/// for the convolution input gradient.
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry.
pub fn col2im(col: &[f32], g: &ConvGeom, out: &mut [f32]) {
    assert_eq!(
        col.len(),
        g.col_rows() * g.col_cols(),
        "col2im input length mismatch"
    );
    col2im_ld(col, g.col_cols(), g, out);
}

/// [`col2im`] over a column matrix with row stride `ld ≥ col_cols`: row `r`
/// occupies `col[r·ld..r·ld + col_cols]`. This folds one sample's slice out
/// of a batched `[col_rows, n · col_cols]` gradient matrix (pass
/// `ld = n · col_cols` and the slice starting at that sample's first
/// column) without copying it into a per-sample buffer first. The
/// accumulation order over taps is identical to [`col2im`].
///
/// # Panics
///
/// Panics if slice lengths do not match the geometry and stride.
pub fn col2im_ld(col: &[f32], ld: usize, g: &ConvGeom, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        g.in_c * g.in_h * g.in_w,
        "col2im output length mismatch"
    );
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    assert!(ld >= cols, "col2im_ld stride {ld} < col_cols {cols}");
    assert!(
        col.len() >= (g.col_rows() - 1) * ld + cols,
        "col2im_ld input too short"
    );
    let mut row = 0usize;
    for c in 0..g.in_c {
        let base = c * g.in_h * g.in_w;
        for kh in 0..g.kernel {
            for kw in 0..g.kernel {
                let src = &col[row * ld..row * ld + cols];
                if g.stride == 1 {
                    // Contiguous accumulate runs, mirroring `fill_tap`'s
                    // window: each in-bounds output row receives one
                    // `out[ix0..] += src[lead..hi]` sweep. Every target
                    // element takes the same single add per tap row, in the
                    // same ascending-`ox` order, as the scalar loop.
                    let lead = g.pad.saturating_sub(kw).min(ow);
                    let hi = (g.in_w + g.pad).saturating_sub(kw).min(ow);
                    let ix0 = (kw + lead).saturating_sub(g.pad);
                    for oy in 0..oh {
                        let iy = (oy + kh) as isize - g.pad as isize;
                        if iy < 0 || iy as usize >= g.in_h || hi <= lead {
                            continue;
                        }
                        let dst = &mut out[base + iy as usize * g.in_w + ix0..][..hi - lead];
                        for (d, &v) in dst.iter_mut().zip(&src[oy * ow + lead..oy * ow + hi]) {
                            *d += v;
                        }
                    }
                    row += 1;
                    continue;
                }
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                            out[base + iy as usize * g.in_w + ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Implicit-GEMM pack source: generates the batched im2col matrix
/// `[col_rows, n · col_cols]` straight into the GEMM's packed `B` panels.
/// Every generated value is the same pure copy (or structural zero) that
/// [`im2col_batched`] would have written and that `pack_b` would then have
/// copied, so the packed panels are byte-identical to the materialized
/// path and the GEMM output is bit-identical.
struct ImageCols<'a> {
    x: &'a [f32],
    g: ConvGeom,
    oh: usize,
    ow: usize,
}

impl ImageCols<'_> {
    /// Fills `dst[..valid]` with batched-column values
    /// `cols_b(row, j0..j0 + valid)` for the tap decoded from `row`,
    /// walking the flat column index incrementally instead of dividing per
    /// element.
    #[inline]
    fn fill_lane(&self, row: usize, j0: usize, valid: usize, dst: &mut [f32]) {
        let g = &self.g;
        let (c, kh, kw) = decode_tap(g, row);
        let cc = self.oh * self.ow;
        let plane_len = g.in_h * g.in_w;
        let sample_len = g.in_c * plane_len;
        let mut i = j0 / cc;
        let jj = j0 % cc;
        let mut oy = jj / self.ow;
        let mut ox = jj - oy * self.ow;
        if g.stride == 1 {
            // Same run decomposition as `fill_tap`, chopped to the lane: a
            // lane covers at most a few (sample, output-row) spans, each a
            // zero-pad head, one contiguous copy, and a zero-pad tail.
            let lead = g.pad.saturating_sub(kw).min(self.ow);
            let hi = (g.in_w + g.pad).saturating_sub(kw).min(self.ow);
            let mut done = 0usize;
            while done < valid {
                let run = (self.ow - ox).min(valid - done);
                let seg = &mut dst[done..done + run];
                let iy = (oy + kh) as isize - g.pad as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    seg.fill(0.0);
                } else {
                    // Clip the tap's [lead, hi) copy window to [ox, ox+run).
                    let s = lead.clamp(ox, ox + run) - ox;
                    let e = hi.clamp(ox, ox + run) - ox;
                    seg[..s].fill(0.0);
                    if e > s {
                        let ix0 = (kw + ox + s).saturating_sub(g.pad);
                        let base = i * sample_len + c * plane_len + iy as usize * g.in_w;
                        seg[s..e].copy_from_slice(&self.x[base + ix0..][..e - s]);
                    }
                    seg[e..].fill(0.0);
                }
                done += run;
                ox += run;
                if ox == self.ow {
                    ox = 0;
                    oy += 1;
                    if oy == self.oh {
                        oy = 0;
                        i += 1;
                    }
                }
            }
            return;
        }
        for d in dst[..valid].iter_mut() {
            let iy = (oy * g.stride + kh) as isize - g.pad as isize;
            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
            *d = if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                self.x[i * sample_len + c * plane_len + iy as usize * g.in_w + ix as usize]
            } else {
                0.0
            };
            ox += 1;
            if ox == self.ow {
                ox = 0;
                oy += 1;
                if oy == self.oh {
                    oy = 0;
                    i += 1;
                }
            }
        }
    }
}

impl PackBSource for ImageCols<'_> {
    fn pack(&self, nr: usize, kr: Range<usize>, cols: Range<usize>, out: &mut [f32]) {
        let kc = kr.len();
        let mut j0 = cols.start;
        let mut strip = 0usize;
        while j0 < cols.end {
            let valid = (cols.end - j0).min(nr);
            let panel = &mut out[strip * kc * nr..(strip + 1) * kc * nr];
            for kk in 0..kc {
                let dst = &mut panel[kk * nr..(kk + 1) * nr];
                self.fill_lane(kr.start + kk, j0, valid, dst);
                dst[valid..].fill(0.0);
            }
            j0 += nr;
            strip += 1;
        }
    }
}

/// Fused dense convolution: `out += W · cols_b(x)` where `W` is the
/// `[out_c, col_rows]` weight matrix and `cols_b(x)` is the batched im2col
/// matrix of `x` (shape `[n, in_c, in_h, in_w]` flat) — except the column
/// matrix is never materialized: the GEMM packs its `B` panels straight out
/// of the images via [`ImageCols`]. Output shape is
/// `[out_c, n · col_cols]`, accumulating like the other `_into` kernels,
/// and the result is bit-identical to `matmul_into_rt(w, cols_b, out)` on a
/// materialized batched column matrix.
///
/// # Panics
///
/// Panics if shapes do not match the geometry.
pub fn conv2d_fused_into_rt(
    rt: &Runtime,
    w: &Tensor,
    x: &[f32],
    n: usize,
    g: &ConvGeom,
    out: &mut Tensor,
) {
    let cr = g.col_rows();
    let ncc = n * g.col_cols();
    assert_eq!(w.shape(), &[w.shape()[0], cr], "fused conv weight shape");
    let oc = w.shape()[0];
    assert_eq!(
        x.len(),
        n * g.in_c * g.in_h * g.in_w,
        "fused conv input length mismatch"
    );
    assert_eq!(out.shape(), &[oc, ncc], "fused conv output shape");
    let src = ImageCols {
        x,
        g: *g,
        oh: g.out_h(),
        ow: g.out_w(),
    };
    let shape = GemmShape {
        k: cr,
        n: ncc,
        lda: cr,
        ldb: ncc,
    };
    if !rt.should_parallelize(oc.saturating_mul(cr).saturating_mul(ncc)) || oc <= 1 {
        return gemm_src::<false, _>(&shape, w.data(), &src, 0..oc, out.data_mut());
    }
    let wd = w.data();
    let jobs = rt.split_rows_mut(out.data_mut(), ncc.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        gemm_src::<false, _>(&shape, wd, &src, rows, cchunk);
    });
}

/// Reference direct convolution of one sample; used by tests to validate the
/// im2col path. `w` has shape `[out_c, in_c, k, k]` flat.
pub fn conv2d_direct(x: &[f32], w: &[f32], g: &ConvGeom, out_c: usize) -> Tensor {
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros(&[out_c, oh, ow]);
    let od = out.data_mut();
    for oc in 0..out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ic in 0..g.in_c {
                    for kh in 0..g.kernel {
                        for kw in 0..g.kernel {
                            let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if iy >= 0
                                && (iy as usize) < g.in_h
                                && ix >= 0
                                && (ix as usize) < g.in_w
                            {
                                let xv = x[(ic * g.in_h + iy as usize) * g.in_w + ix as usize];
                                let wv = w[((oc * g.in_c + ic) * g.kernel + kh) * g.kernel + kw];
                                acc += xv * wv;
                            }
                        }
                    }
                }
                od[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn geometry() {
        let g = ConvGeom {
            in_c: 3,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 8);
        assert_eq!(g.out_w(), 8);
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 64);
        let g2 = ConvGeom {
            in_c: 1,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(g2.out_h(), 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn geometry_rejects_oversized_kernel() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 2,
            in_w: 2,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let _ = g.out_h();
    }

    #[test]
    fn im2col_matmul_matches_direct_conv() {
        for (stride, pad) in [(1, 1), (2, 1), (1, 0)] {
            let g = ConvGeom {
                in_c: 3,
                in_h: 7,
                in_w: 6,
                kernel: 3,
                stride,
                pad,
            };
            let out_c = 4;
            let x = rand_vec(g.in_c * g.in_h * g.in_w, 10 + stride as u64);
            let w = rand_vec(out_c * g.col_rows(), 20 + pad as u64);
            let mut col = vec![0.0; g.col_rows() * g.col_cols()];
            im2col(&x, &g, &mut col);
            let wt = Tensor::from_vec(w.clone(), &[out_c, g.col_rows()]);
            let colt = Tensor::from_vec(col, &[g.col_rows(), g.col_cols()]);
            let got = wt.matmul(&colt);
            let expect = conv2d_direct(&x, &w, &g, out_c);
            assert_close(got.data(), expect.data(), 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        let g = ConvGeom {
            in_c: 2,
            in_h: 5,
            in_w: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let x = rand_vec(g.in_c * g.in_h * g.in_w, 33);
        let y = rand_vec(g.col_rows() * g.col_cols(), 44);
        let mut cx = vec![0.0; y.len()];
        im2col(&x, &g, &mut cx);
        let lhs: f32 = cx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut xy = vec![0.0; x.len()];
        col2im(&y, &g, &mut xy);
        let rhs: f32 = x.iter().zip(xy.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_rt_is_bit_identical() {
        let g = ConvGeom {
            in_c: 3,
            in_h: 7,
            in_w: 6,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let x = rand_vec(g.in_c * g.in_h * g.in_w, 55);
        let mut seq = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&x, &g, &mut seq);
        for threads in [1usize, 2, 5, 64] {
            let mut par = vec![0.0; seq.len()];
            im2col_rt(&Runtime::exact(threads).with_min_work(0), &x, &g, &mut par);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    /// The batched layout must be byte-identical to per-sample im2col calls
    /// interleaved into the `[cr, n·cc]` layout — the property that makes
    /// whole-batch GEMMs trace-compatible with the per-sample loop.
    #[test]
    fn batched_matches_per_sample_exactly() {
        for (n, stride, pad) in [(1usize, 1, 1), (2, 2, 1), (7, 1, 0)] {
            let g = ConvGeom {
                in_c: 3,
                in_h: 7,
                in_w: 5,
                kernel: 3,
                stride,
                pad,
            };
            let (cr, cc) = (g.col_rows(), g.col_cols());
            let sample = g.in_c * g.in_h * g.in_w;
            let x = rand_vec(n * sample, 70 + n as u64);
            let mut expect = vec![0.0f32; cr * n * cc];
            let mut one = vec![0.0f32; cr * cc];
            for i in 0..n {
                im2col(&x[i * sample..(i + 1) * sample], &g, &mut one);
                for r in 0..cr {
                    expect[r * n * cc + i * cc..][..cc].copy_from_slice(&one[r * cc..][..cc]);
                }
            }
            let mut got = vec![1.0f32; cr * n * cc]; // overwritten, not accumulated
            im2col_batched(&x, n, &g, &mut got);
            assert_eq!(got, expect, "n={n} stride={stride} pad={pad}");
            for threads in [1usize, 2, 4, 64] {
                let mut par = vec![1.0f32; cr * n * cc];
                im2col_batched_rt(
                    &Runtime::exact(threads).with_min_work(0),
                    &x,
                    n,
                    &g,
                    &mut par,
                );
                assert_eq!(par, expect, "threads={threads} n={n}");
            }
        }
    }

    /// Folding a sample's slice of a batched gradient with `col2im_ld` must
    /// be bit-identical to copying the slice out and running plain col2im.
    #[test]
    fn col2im_ld_matches_materialized_slice() {
        let g = ConvGeom {
            in_c: 2,
            in_h: 6,
            in_w: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let n = 3usize;
        let (cr, cc) = (g.col_rows(), g.col_cols());
        let batched = rand_vec(cr * n * cc, 81);
        for i in 0..n {
            let mut slice = vec![0.0f32; cr * cc];
            for r in 0..cr {
                slice[r * cc..][..cc].copy_from_slice(&batched[r * n * cc + i * cc..][..cc]);
            }
            let mut expect = vec![0.25f32; g.in_c * g.in_h * g.in_w];
            col2im(&slice, &g, &mut expect);
            let mut got = vec![0.25f32; g.in_c * g.in_h * g.in_w];
            col2im_ld(&batched[i * cc..], n * cc, &g, &mut got);
            assert_eq!(got, expect, "sample {i}");
        }
    }

    /// The fused implicit-GEMM conv must be *bit-identical* to the GEMM over
    /// a materialized batched column matrix, at every thread count —
    /// the packed panels are byte-equal, so the arithmetic is too.
    #[test]
    fn fused_conv_is_bit_identical_to_materialized_gemm() {
        use crate::matmul::matmul_into;
        for (n, oc, stride, pad) in [(1usize, 1usize, 1, 0), (2, 4, 2, 1), (7, 5, 1, 1)] {
            let g = ConvGeom {
                in_c: 3,
                in_h: 9,
                in_w: 6,
                kernel: 3,
                stride,
                pad,
            };
            let (cr, cc) = (g.col_rows(), g.col_cols());
            let x = rand_vec(n * g.in_c * g.in_h * g.in_w, 90 + n as u64);
            let w = Tensor::from_vec(rand_vec(oc * cr, 91 + oc as u64), &[oc, cr]);
            let mut cols_b = vec![0.0f32; cr * n * cc];
            im2col_batched(&x, n, &g, &mut cols_b);
            let colst = Tensor::from_vec(cols_b, &[cr, n * cc]);
            let mut expect = Tensor::ones(&[oc, n * cc]);
            matmul_into(&w, &colst, &mut expect);
            for threads in [1usize, 2, 4] {
                let rt = Runtime::exact(threads).with_min_work(0);
                let mut got = Tensor::ones(&[oc, n * cc]);
                conv2d_fused_into_rt(&rt, &w, &x, n, &g, &mut got);
                assert_eq!(got.data(), expect.data(), "n={n} oc={oc} threads={threads}");
            }
        }
    }

    #[test]
    fn col2im_accumulates() {
        let g = ConvGeom {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            kernel: 3,
            stride: 1,
            pad: 0,
        };
        let col = vec![1.0; 9];
        let mut out = vec![5.0; 9];
        col2im(&col, &g, &mut out);
        assert_eq!(out, vec![6.0; 9]);
    }
}
