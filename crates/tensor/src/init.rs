//! Seeded random initializers for network parameters.

use crate::Tensor;
use rand::Rng;

/// Samples a tensor with i.i.d. `N(mean, std²)` entries.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], mean: f32, std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|_| mean + std * sample_standard_normal(rng))
        .collect();
    Tensor::from_vec(data, shape)
}

/// Samples a tensor with i.i.d. `U(lo, hi)` entries.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform range is empty: [{lo}, {hi})");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Kaiming (He) normal initialization for ReLU networks: `N(0, sqrt(2/fan_in)²)`.
///
/// `fan_in` is inferred from the shape: for `[out, in]` linear weights it is
/// `in`; for `[out_c, in_c, k, k]` convolution weights it is `in_c * k * k`.
///
/// # Panics
///
/// Panics if the shape has fewer than 2 dims or zero fan-in.
pub fn kaiming_normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize]) -> Tensor {
    assert!(shape.len() >= 2, "kaiming init needs weight rank >= 2");
    let fan_in: usize = shape[1..].iter().product();
    assert!(fan_in > 0, "kaiming init needs nonzero fan-in");
    let std = (2.0 / fan_in as f32).sqrt();
    normal(rng, shape, 0.0, std)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if the shape has fewer than 2 dims.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize]) -> Tensor {
    assert!(shape.len() >= 2, "xavier init needs weight rank >= 2");
    let fan_in: usize = shape[1..].iter().product();
    let fan_out = shape[0];
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -a, a)
}

/// Box–Muller standard normal sample.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = normal(&mut rng, &[10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = kaiming_normal(&mut rng, &[64, 32, 3, 3]);
        let fan_in = 32 * 9;
        let expect_std = (2.0 / fan_in as f32).sqrt();
        let std = (t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32).sqrt();
        assert!(
            (std - expect_std).abs() / expect_std < 0.15,
            "{std} vs {expect_std}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal(&mut ChaCha8Rng::seed_from_u64(1), &[16], 0.0, 1.0);
        let b = normal(&mut ChaCha8Rng::seed_from_u64(1), &[16], 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn uniform_rejects_empty_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let _ = uniform(&mut rng, &[1], 1.0, 1.0);
    }
}
