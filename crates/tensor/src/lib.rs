//! Minimal dense `f32` tensor library backing the FedTiny reproduction.
//!
//! This crate provides exactly the numerical substrate the federated pruning
//! stack needs and nothing more: a row-major [`Tensor`] type, blocked
//! matrix multiplication, im2col/col2im helpers for convolution, elementwise
//! arithmetic, reductions, seeded random initializers, and the CSR sparse
//! kernels ([`spmm_into`], [`dsmm_nt_into`], [`sddmm_nt_into`], ...) that
//! execute pruned layers in `O(nnz)` instead of `O(rows · cols)`.
//!
//! Design notes:
//! - Shapes are validated eagerly; mismatches panic with a descriptive
//!   message (documented under "Panics" on each operation). This mirrors the
//!   behaviour of mainstream array libraries: shape errors are programming
//!   errors, not recoverable conditions.
//! - Everything is deterministic given a seeded RNG; all experiment code in
//!   the workspace threads [`rand_chacha::ChaCha8Rng`] seeds through.
//!
//! # Examples
//!
//! ```
//! use ft_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod bsr;
mod im2col;
mod init;
mod matmul;
mod ops;
mod pool;
mod proptests;
mod quant;
mod spmm;
mod tensor;

pub use bsr::{bsr_dsmm_nt_into, bsr_dsmm_nt_into_rt, bsr_spmm_into, bsr_spmm_into_rt, BsrView};
pub use ft_runtime::Runtime;
pub use im2col::{
    col2im, col2im_ld, conv2d_direct, conv2d_fused_into_rt, im2col, im2col_batched,
    im2col_batched_rt, im2col_rt, ConvGeom,
};
pub use init::{kaiming_normal, normal, uniform, xavier_uniform};
pub use matmul::{
    matmul_into, matmul_into_rt, matmul_nt_into, matmul_nt_into_rt, matmul_nt_seg_into,
    matmul_nt_seg_into_rt, matmul_tn_into, matmul_tn_into_rt,
};
pub use pool::{
    avg_pool_global, avg_pool_global_backward, avg_pool_global_backward_into,
    avg_pool_global_into_rt, avg_pool_global_rt, max_pool2x2, max_pool2x2_backward,
    max_pool2x2_backward_into, max_pool2x2_into_rt, max_pool2x2_rt,
};
pub use quant::{
    dequantize_affine_i8, dequantize_one, quant_error_bound, quantize_affine_i8, QuantParams,
};
pub use spmm::{
    dsmm_into, dsmm_into_rt, dsmm_nt_into, dsmm_nt_into_rt, sddmm_nt_into, sddmm_nt_into_rt,
    sddmm_nt_seg_into, sddmm_nt_seg_into_rt, sddmm_tn_into, sddmm_tn_into_rt, spmm_into,
    spmm_into_rt, spmm_tn_into, spmm_tn_into_rt, CsrView,
};
pub use tensor::Tensor;

/// Numerical tolerance used by the test-suites across the workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts that two `f32` slices are elementwise close.
///
/// Intended for tests; panics with the first offending index on failure.
///
/// # Panics
///
/// Panics if lengths differ or any pair differs by more than `tol`.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "index {i}: {x} vs {y} differ by more than {tol}"
        );
    }
}
