//! Cache-friendly matrix multiplication kernels.
//!
//! Three layouts are provided because convolution backward passes need
//! products against transposed operands and materializing the transpose
//! would double the memory traffic:
//!
//! - [`matmul_into`]: `C = A · B`
//! - [`matmul_tn_into`]: `C = Aᵀ · B`
//! - [`matmul_nt_into`]: `C = A · Bᵀ`

use crate::Tensor;

/// `C += A[m×k] · B[k×n]`, accumulating into `c`.
///
/// Uses an `i-p-j` loop order so the inner loop streams both `B` and `C`
/// rows sequentially.
///
/// # Panics
///
/// Panics if shapes are not `[m,k]`, `[k,n]`, `[m,n]`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul output shape mismatch");
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `C += Aᵀ[k×m]ᵀ · B[k×n]`, i.e. `A` has shape `[k, m]` and is consumed
/// transposed, accumulating into `c` of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_tn output shape mismatch");
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    // Aᵀ(i,p) = A(p,i): iterate p outermost so both A rows and B rows stream.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `C += A[m×k] · Bᵀ` where `B` has shape `[n, k]`, accumulating into `c`
/// of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = dims2(a, "A");
    let (n, k2) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_nt output shape mismatch");
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

impl Tensor {
    /// Returns `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use ft_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let m = self.shape()[0];
        let n = other.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        matmul_into(self, other, &mut c);
        c
    }
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), shape)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_t(&[7, 5], 1);
        let b = rand_t(&[5, 9], 2);
        assert_close(a.matmul(&b).data(), naive(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_t(&[4, 4], 3);
        assert_close(a.matmul(&Tensor::eye(4)).data(), a.data(), 1e-6);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = rand_t(&[6, 3], 4); // k=6, m=3
        let b = rand_t(&[6, 5], 5);
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_tn_into(&a, &b, &mut c);
        let expect = a.transposed().matmul(&b);
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = rand_t(&[3, 6], 6);
        let b = rand_t(&[5, 6], 7); // n=5, k=6
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_nt_into(&a, &b, &mut c);
        let expect = a.matmul(&b.transposed());
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn into_variants_accumulate() {
        let a = rand_t(&[2, 2], 8);
        let b = rand_t(&[2, 2], 9);
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c);
        let expect = a.matmul(&b).add(&Tensor::ones(&[2, 2]));
        assert_close(c.data(), expect.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }
}
