//! Cache-friendly matrix multiplication kernels.
//!
//! Three layouts are provided because convolution backward passes need
//! products against transposed operands and materializing the transpose
//! would double the memory traffic:
//!
//! - [`matmul_into`]: `C = A · B`
//! - [`matmul_tn_into`]: `C = Aᵀ · B`
//! - [`matmul_nt_into`]: `C = A · Bᵀ`
//!
//! Every kernel also has an `_rt` variant taking a
//! [`Runtime`](ft_runtime::Runtime): the output is partitioned into
//! contiguous row ranges (deterministic chunks, see
//! [`ft_runtime::chunk_ranges`]) and each worker runs the *same* loop body
//! over its range, so parallel results are bit-for-bit identical to
//! sequential ones. A 1-thread runtime falls through to the sequential
//! kernel.

use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// `C += A[m×k] · B[k×n]` over the output-row range `rows`; `cchunk` holds
/// exactly those rows.
fn matmul_rows(ad: &[f32], bd: &[f32], k: usize, n: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    for (local, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cchunk[local * n..(local + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `C += Aᵀ · B` restricted to output rows `rows` (`A` is `[k×m]`).
///
/// The loop order keeps `p` outermost exactly like the sequential kernel,
/// so each output element accumulates in the same order on every path.
fn matmul_tn_rows(
    ad: &[f32],
    bd: &[f32],
    k: usize,
    m: usize,
    n: usize,
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for i in rows.clone() {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let local = i - rows.start;
            let crow = &mut cchunk[local * n..(local + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `C += A · Bᵀ` over the output-row range `rows` (`B` is `[n×k]`).
fn matmul_nt_rows(
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    for (local, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cchunk[local * n..(local + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

fn check_matmul(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul output shape mismatch");
    (m, k, n)
}

fn check_matmul_tn(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (k, m) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_tn output shape mismatch");
    (k, m, n)
}

fn check_matmul_nt(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a, "A");
    let (n, k2) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_nt output shape mismatch");
    (m, k, n)
}

/// `C += A[m×k] · B[k×n]`, accumulating into `c`.
///
/// Uses an `i-p-j` loop order so the inner loop streams both `B` and `C`
/// rows sequentially.
///
/// # Panics
///
/// Panics if shapes are not `[m,k]`, `[k,n]`, `[m,n]`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul(a, b, c);
    matmul_rows(a.data(), b.data(), k, n, 0..m, c.data_mut());
}

/// [`matmul_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_into`].
pub fn matmul_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul(a, b, c);
    if !rt.should_parallelize(m.saturating_mul(k).saturating_mul(n)) || m <= 1 {
        return matmul_rows(a.data(), b.data(), k, n, 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        matmul_rows(ad, bd, k, n, rows, cchunk);
    });
}

/// `C += Aᵀ[k×m]ᵀ · B[k×n]`, i.e. `A` has shape `[k, m]` and is consumed
/// transposed, accumulating into `c` of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m, n) = check_matmul_tn(a, b, c);
    // Aᵀ(i,p) = A(p,i): iterate p outermost so both A rows and B rows stream.
    matmul_tn_rows(a.data(), b.data(), k, m, n, 0..m, c.data_mut());
}

/// [`matmul_tn_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_tn_into`].
pub fn matmul_tn_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m, n) = check_matmul_tn(a, b, c);
    if !rt.should_parallelize(k.saturating_mul(m).saturating_mul(n)) || m <= 1 {
        return matmul_tn_rows(a.data(), b.data(), k, m, n, 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        matmul_tn_rows(ad, bd, k, m, n, rows, cchunk);
    });
}

/// `C += A[m×k] · Bᵀ` where `B` has shape `[n, k]`, accumulating into `c`
/// of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    matmul_nt_rows(a.data(), b.data(), k, n, 0..m, c.data_mut());
}

/// [`matmul_nt_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_nt_into`].
pub fn matmul_nt_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    if !rt.should_parallelize(m.saturating_mul(k).saturating_mul(n)) || m <= 1 {
        return matmul_nt_rows(a.data(), b.data(), k, n, 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        matmul_nt_rows(ad, bd, k, n, rows, cchunk);
    });
}

impl Tensor {
    /// Returns `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use ft_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let m = self.shape()[0];
        let n = other.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        matmul_into(self, other, &mut c);
        c
    }
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), shape)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_t(&[7, 5], 1);
        let b = rand_t(&[5, 9], 2);
        assert_close(a.matmul(&b).data(), naive(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_t(&[4, 4], 3);
        assert_close(a.matmul(&Tensor::eye(4)).data(), a.data(), 1e-6);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = rand_t(&[6, 3], 4); // k=6, m=3
        let b = rand_t(&[6, 5], 5);
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_tn_into(&a, &b, &mut c);
        let expect = a.transposed().matmul(&b);
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = rand_t(&[3, 6], 6);
        let b = rand_t(&[5, 6], 7); // n=5, k=6
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_nt_into(&a, &b, &mut c);
        let expect = a.matmul(&b.transposed());
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn into_variants_accumulate() {
        let a = rand_t(&[2, 2], 8);
        let b = rand_t(&[2, 2], 9);
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c);
        let expect = a.matmul(&b).add(&Tensor::ones(&[2, 2]));
        assert_close(c.data(), expect.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    /// Every parallel layout is bit-identical to its sequential kernel for
    /// every thread count, including threads > rows and single-row outputs.
    #[test]
    fn rt_variants_are_bit_identical() {
        let cases = [(17usize, 13usize, 11usize), (1, 8, 5), (4, 1, 3)];
        for (ci, &(m, k, n)) in cases.iter().enumerate() {
            let seed = 100 + ci as u64 * 10;
            let a = rand_t(&[m, k], seed);
            let at = rand_t(&[k, m], seed + 1);
            let b = rand_t(&[k, n], seed + 2);
            let bt = rand_t(&[n, k], seed + 3);
            for threads in [1usize, 2, 3, 7, 64] {
                let rt = Runtime::new(threads).with_min_work(0);
                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_into(&a, &b, &mut seq);
                matmul_into_rt(&rt, &a, &b, &mut par);
                assert_eq!(seq.data(), par.data(), "matmul t={threads} {m}x{k}x{n}");

                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_tn_into(&at, &b, &mut seq);
                matmul_tn_into_rt(&rt, &at, &b, &mut par);
                assert_eq!(seq.data(), par.data(), "tn t={threads} {m}x{k}x{n}");

                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_nt_into(&a, &bt, &mut seq);
                matmul_nt_into_rt(&rt, &a, &bt, &mut par);
                assert_eq!(seq.data(), par.data(), "nt t={threads} {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn rt_empty_output_is_a_noop() {
        let rt = Runtime::new(4).with_min_work(0);
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 5]);
        let mut c = Tensor::zeros(&[0, 5]);
        matmul_into_rt(&rt, &a, &b, &mut c);
        assert_eq!(c.numel(), 0);
    }
}
