//! Cache-blocked, packed matrix-multiplication kernels.
//!
//! Three layouts are provided because convolution backward passes need
//! products against transposed operands and materializing the transpose
//! would double the memory traffic:
//!
//! - [`matmul_into`]: `C = A · B`
//! - [`matmul_tn_into`]: `C = Aᵀ · B`
//! - [`matmul_nt_into`]: `C = A · Bᵀ`
//!
//! # Blocking scheme
//!
//! All three layouts run the same GEMM driver: the iteration space is tiled
//! `NC × KC × MC` (columns, depth, rows — see [`KC`]/[`NC`] and the
//! per-microkernel `MC`), the active `A`/`B` panels are repacked into
//! contiguous scratch so the inner loops never see a strided access, and an
//! `MR × NR` register-tiled microkernel does all the arithmetic. Operand
//! transposition is handled entirely in the packing routines, so the
//! microkernel is shared by every layout. Edge tiles are zero-padded in the
//! packed panels; the padded lanes land in accumulator slots that are never
//! written back.
//!
//! Two microkernels exist:
//!
//! - a portable `4 × 8` kernel written so the autovectorizer emits SIMD for
//!   whatever the target baseline is, and
//! - an explicit `6 × 16` AVX2+FMA kernel (`std::arch`), compiled behind the
//!   default-on `simd` cargo feature and selected by runtime CPU detection.
//!
//! The two kernels round differently (the FMA path fuses each
//! multiply-accumulate), so a given binary always picks one deterministically
//! — detection depends only on the CPU, never on shapes or thread counts.
//!
//! # Determinism
//!
//! Every kernel also has an `_rt` variant taking a
//! [`Runtime`](ft_runtime::Runtime): the output is partitioned into
//! contiguous row ranges (deterministic chunks, see
//! [`ft_runtime::chunk_ranges`]) and each worker runs the *same* blocked
//! driver over its range, so parallel results are bit-for-bit identical to
//! sequential ones. This holds because the accumulation order of any output
//! element — ascending `KC` depth panels, ascending `k` within a panel, one
//! `C += panel_sum` per panel — is a pure function of `k` alone and never
//! depends on how rows were split across workers.

use crate::Tensor;
use ft_runtime::Runtime;
use std::cell::RefCell;
use std::ops::Range;

/// Depth (`k`) blocking: one packed `A` strip (`KC × MR`) and one packed `B`
/// strip (`KC × NR`) stay L1-resident while the microkernel runs.
const KC: usize = 256;
/// Column (`n`) blocking: the packed `B` panel (`KC × NC` ≤ 512 KiB) is
/// sized for L2 and reused across every row tile.
const NC: usize = 512;

/// Upper bounds for the shared accumulator tile; individual microkernels use
/// the top-left `MR × NR` corner.
const MR_MAX: usize = 6;
const NR_MAX: usize = 16;

/// One register tile of `C`. Kept flat across microkernels so the driver can
/// zero and write back without knowing which kernel ran.
type Acc = [[f32; NR_MAX]; MR_MAX];

/// A register-tiled inner kernel: computes
/// `acc[..MR][..NR] += Apanel · Bpanel` over a packed `kc`-deep strip pair.
trait Micro {
    /// Rows of `C` per register tile.
    const MR: usize;
    /// Columns of `C` per register tile.
    const NR: usize;
    /// Row blocking (multiple of `MR`): rows of `A` packed per panel.
    const MC: usize;
    /// `ap` is `kc × MR` (row-groups of `A`), `bp` is `kc × NR`
    /// (column-groups of `B`), both contiguous and zero-padded.
    fn kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut Acc);
}

/// Portable microkernel: plain nested loops over a `4 × 8` tile, shaped so
/// the autovectorizer keeps the tile in registers and emits SIMD
/// multiply-adds for the target baseline.
struct Portable;

impl Micro for Portable {
    const MR: usize = 4;
    const NR: usize = 8;
    const MC: usize = 64;

    #[inline]
    fn kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut Acc) {
        for (a, b) in ap.chunks_exact(4).zip(bp.chunks_exact(8)).take(kc) {
            for (&av, accr) in a.iter().zip(acc.iter_mut()) {
                for (cv, &bv) in accr.iter_mut().zip(b.iter()) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// Whether the explicit AVX2+FMA kernels are active in this process (shared
/// with the sparse kernels in [`crate::spmm`], so dense and sparse paths
/// always make the same choice).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn simd_active() -> bool {
    avx::available()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use super::{Acc, Micro};
    use std::arch::x86_64::*;

    /// Whether the explicit AVX2+FMA microkernel may run on this CPU.
    /// Detected once; the choice depends only on the host CPU, so a process
    /// always uses the same kernel for every shape and thread count.
    pub(super) fn available() -> bool {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// Explicit `6 × 16` AVX2+FMA microkernel: twelve `__m256` accumulators,
    /// two packed-`B` vectors, and a broadcast `A` lane per step — 15 of the
    /// 16 ymm registers, no spills.
    pub(super) struct AvxFma;

    impl Micro for AvxFma {
        const MR: usize = 6;
        const NR: usize = 16;
        const MC: usize = 96;

        #[inline]
        fn kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut Acc) {
            debug_assert!(ap.len() >= kc * Self::MR && bp.len() >= kc * Self::NR);
            // SAFETY: `AvxFma` is only instantiated after `available()`
            // confirmed AVX2+FMA at runtime, and the slice lengths cover
            // every unchecked access below.
            unsafe { kernel_fma(kc, ap, bp, acc) }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn kernel_fma(kc: usize, ap: &[f32], bp: &[f32], acc: &mut Acc) {
        unsafe {
            let mut r = [[_mm256_setzero_ps(); 2]; 6];
            for (racc, row) in r.iter_mut().zip(acc.iter()) {
                racc[0] = _mm256_loadu_ps(row.as_ptr());
                racc[1] = _mm256_loadu_ps(row.as_ptr().add(8));
            }
            for kk in 0..kc {
                let b = bp.as_ptr().add(kk * 16);
                let b0 = _mm256_loadu_ps(b);
                let b1 = _mm256_loadu_ps(b.add(8));
                let a = ap.as_ptr().add(kk * 6);
                for (ir, racc) in r.iter_mut().enumerate() {
                    let av = _mm256_broadcast_ss(&*a.add(ir));
                    racc[0] = _mm256_fmadd_ps(av, b0, racc[0]);
                    racc[1] = _mm256_fmadd_ps(av, b1, racc[1]);
                }
            }
            for (racc, row) in r.iter().zip(acc.iter_mut()) {
                _mm256_storeu_ps(row.as_mut_ptr(), racc[0]);
                _mm256_storeu_ps(row.as_mut_ptr().add(8), racc[1]);
            }
        }
    }
}

/// Packs rows `rows` × depth `kr` of `A` into `MR`-row strips:
/// `out[strip][kk][ir] = A(rows.start + strip·mr + ir, kr.start + kk)`,
/// zero-padding row lanes past `rows.end`.
///
/// `AT = false` reads `A` stored `[m × k]` (`lda = k`); `AT = true` reads
/// `A` stored `[k × m]` and consumed transposed (`lda = m`), which makes the
/// pack a contiguous row copy.
fn pack_a<const AT: bool>(
    ad: &[f32],
    lda: usize,
    mr: usize,
    rows: Range<usize>,
    kr: Range<usize>,
    out: &mut [f32],
) {
    let kc = kr.len();
    let mut i0 = rows.start;
    let mut strip = 0usize;
    while i0 < rows.end {
        let valid = (rows.end - i0).min(mr);
        let panel = &mut out[strip * kc * mr..(strip + 1) * kc * mr];
        if AT {
            for kk in 0..kc {
                let src = &ad[(kr.start + kk) * lda + i0..][..valid];
                let dst = &mut panel[kk * mr..(kk + 1) * mr];
                dst[..valid].copy_from_slice(src);
                dst[valid..].fill(0.0);
            }
        } else {
            if valid < mr {
                panel.fill(0.0);
            }
            for ir in 0..valid {
                let arow = &ad[(i0 + ir) * lda + kr.start..][..kc];
                for (kk, &v) in arow.iter().enumerate() {
                    panel[kk * mr + ir] = v;
                }
            }
        }
        i0 += mr;
        strip += 1;
    }
}

/// Packs depth `kr` × columns `cols` of `B` into `NR`-column strips:
/// `out[strip][kk][jr] = B(kr.start + kk, cols.start + strip·nr + jr)`,
/// zero-padding column lanes past `cols.end`.
///
/// `BT = false` reads `B` stored `[k × n]` (`ldb = n`); `BT = true` reads
/// `B` stored `[n × k]` and consumed transposed (`ldb = k`).
fn pack_b<const BT: bool>(
    bd: &[f32],
    ldb: usize,
    nr: usize,
    kr: Range<usize>,
    cols: Range<usize>,
    out: &mut [f32],
) {
    let kc = kr.len();
    let mut j0 = cols.start;
    let mut strip = 0usize;
    while j0 < cols.end {
        let valid = (cols.end - j0).min(nr);
        let panel = &mut out[strip * kc * nr..(strip + 1) * kc * nr];
        if BT {
            if valid < nr {
                panel.fill(0.0);
            }
            for jr in 0..valid {
                let brow = &bd[(j0 + jr) * ldb + kr.start..][..kc];
                for (kk, &v) in brow.iter().enumerate() {
                    panel[kk * nr + jr] = v;
                }
            }
        } else {
            for kk in 0..kc {
                let src = &bd[(kr.start + kk) * ldb + j0..][..valid];
                let dst = &mut panel[kk * nr..(kk + 1) * nr];
                dst[..valid].copy_from_slice(src);
                dst[valid..].fill(0.0);
            }
        }
        j0 += nr;
        strip += 1;
    }
}

/// Shape and stride bundle for one GEMM call; `lda`/`ldb` are the row
/// strides of the *stored* operands (so `m` for a transposed `A`, `k` for a
/// transposed `B`).
pub(crate) struct GemmShape {
    pub(crate) k: usize,
    pub(crate) n: usize,
    pub(crate) lda: usize,
    pub(crate) ldb: usize,
}

/// A source of packed `B` panels for the blocked driver. The only
/// implementation the driver itself uses is [`SliceB`] (a stored matrix
/// packed by [`pack_b`]); the im2col module provides a source that generates
/// convolution columns on the fly, byte-identical to packing a materialized
/// `cols` matrix, so the dense conv path never builds `cols` at all.
///
/// `pack` must fill `out` with `NR`-column strips covering `cols` at depth
/// `kr`, zero-padding column lanes past `cols.end` — the exact layout
/// documented on [`pack_b`].
pub(crate) trait PackBSource {
    fn pack(&self, nr: usize, kr: Range<usize>, cols: Range<usize>, out: &mut [f32]);
}

/// The standard panel source: a stored `[k × n]` (or `[n × k]` when
/// `BT = true`) matrix with row stride `ldb`.
pub(crate) struct SliceB<'a, const BT: bool> {
    pub(crate) bd: &'a [f32],
    pub(crate) ldb: usize,
}

impl<const BT: bool> PackBSource for SliceB<'_, BT> {
    #[inline]
    fn pack(&self, nr: usize, kr: Range<usize>, cols: Range<usize>, out: &mut [f32]) {
        pack_b::<BT>(self.bd, self.ldb, nr, kr, cols, out);
    }
}

thread_local! {
    /// Per-thread packing scratch (`bpack`, `apack`), reused across GEMM
    /// calls so the steady-state training loop performs no allocations. The
    /// packing routines fully overwrite every panel the driver reads, so
    /// stale contents from a previous call are never observable.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The blocked driver: `C[rows] += op(A) · op(B)` for the output-row range
/// `rows`, where `cchunk` holds exactly those rows. Shared by every layout
/// and every microkernel; see the module docs for the blocking scheme and
/// the accumulation-order contract.
fn gemm_with<M: Micro, const AT: bool, B: PackBSource>(
    shape: &GemmShape,
    ad: &[f32],
    bsrc: &B,
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    let (k, n) = (shape.k, shape.n);
    if rows.is_empty() || n == 0 || k == 0 {
        return;
    }
    let kc_max = k.min(KC);
    let bstrips = n.min(NC).div_ceil(M::NR);
    let astrips = rows.len().min(M::MC).div_ceil(M::MR);
    PACK_SCRATCH.with(|scratch| {
        let (bpack, apack) = &mut *scratch.borrow_mut();
        bpack.resize(bstrips * M::NR * kc_max, 0.0);
        apack.resize(astrips * M::MR * kc_max, 0.0);
        let mut acc: Acc = [[0.0; NR_MAX]; MR_MAX];

        let mut jc = 0;
        while jc < n {
            let nc = (n - jc).min(NC);
            let mut pc = 0;
            while pc < k {
                let kc = (k - pc).min(KC);
                bsrc.pack(M::NR, pc..pc + kc, jc..jc + nc, bpack);
                let mut ic = rows.start;
                while ic < rows.end {
                    let mc = (rows.end - ic).min(M::MC);
                    pack_a::<AT>(ad, shape.lda, M::MR, ic..ic + mc, pc..pc + kc, apack);
                    for jt in 0..nc.div_ceil(M::NR) {
                        let bp = &bpack[jt * kc * M::NR..(jt + 1) * kc * M::NR];
                        let j0 = jc + jt * M::NR;
                        let jvalid = (jc + nc - j0).min(M::NR);
                        for it in 0..mc.div_ceil(M::MR) {
                            let ap = &apack[it * kc * M::MR..(it + 1) * kc * M::MR];
                            let i0 = ic + it * M::MR;
                            let ivalid = (ic + mc - i0).min(M::MR);
                            for row in acc.iter_mut().take(M::MR) {
                                row[..M::NR].fill(0.0);
                            }
                            M::kernel(kc, ap, bp, &mut acc);
                            for (ir, accr) in acc.iter().enumerate().take(ivalid) {
                                let at = (i0 - rows.start + ir) * n + j0;
                                for (cv, &av) in cchunk[at..at + jvalid].iter_mut().zip(accr.iter())
                                {
                                    *cv += av;
                                }
                            }
                        }
                    }
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }
    });
}

/// Selects the microkernel (explicit SIMD when compiled in and supported,
/// portable otherwise) and runs the blocked driver over an arbitrary packed
/// `B` source.
pub(crate) fn gemm_src<const AT: bool, B: PackBSource>(
    shape: &GemmShape,
    ad: &[f32],
    bsrc: &B,
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx::available() {
        return gemm_with::<avx::AvxFma, AT, B>(shape, ad, bsrc, rows, cchunk);
    }
    gemm_with::<Portable, AT, B>(shape, ad, bsrc, rows, cchunk)
}

/// Dispatches a stored-matrix `B` through [`gemm_src`].
fn gemm<const AT: bool, const BT: bool>(
    shape: &GemmShape,
    ad: &[f32],
    bd: &[f32],
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    let bsrc = SliceB::<BT> { bd, ldb: shape.ldb };
    gemm_src::<AT, _>(shape, ad, &bsrc, rows, cchunk)
}

fn check_matmul(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul output shape mismatch");
    (m, k, n)
}

fn check_matmul_tn(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (k, m) = dims2(a, "A");
    let (k2, n) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_tn output shape mismatch");
    (k, m, n)
}

fn check_matmul_nt(a: &Tensor, b: &Tensor, c: &Tensor) -> (usize, usize, usize) {
    let (m, k) = dims2(a, "A");
    let (n, k2) = dims2(b, "B");
    assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, n), "matmul_nt output shape mismatch");
    (m, k, n)
}

/// `C += A[m×k] · B[k×n]`, accumulating into `c`.
///
/// Exact zeros in `A` are multiplied like any other value, so non-finite
/// inputs propagate (`0 × NaN = NaN`) instead of being silently skipped.
///
/// # Panics
///
/// Panics if shapes are not `[m,k]`, `[k,n]`, `[m,n]`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: k,
        ldb: n,
    };
    gemm::<false, false>(&shape, a.data(), b.data(), 0..m, c.data_mut());
}

/// [`matmul_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_into`].
pub fn matmul_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: k,
        ldb: n,
    };
    if !rt.should_parallelize(m.saturating_mul(k).saturating_mul(n)) || m <= 1 {
        return gemm::<false, false>(&shape, a.data(), b.data(), 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        gemm::<false, false>(&shape, ad, bd, rows, cchunk);
    });
}

/// `C += Aᵀ[k×m]ᵀ · B[k×n]`, i.e. `A` has shape `[k, m]` and is consumed
/// transposed, accumulating into `c` of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m, n) = check_matmul_tn(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: m,
        ldb: n,
    };
    gemm::<true, false>(&shape, a.data(), b.data(), 0..m, c.data_mut());
}

/// [`matmul_tn_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_tn_into`].
pub fn matmul_tn_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m, n) = check_matmul_tn(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: m,
        ldb: n,
    };
    if !rt.should_parallelize(k.saturating_mul(m).saturating_mul(n)) || m <= 1 {
        return gemm::<true, false>(&shape, a.data(), b.data(), 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        gemm::<true, false>(&shape, ad, bd, rows, cchunk);
    });
}

/// `C += A[m×k] · Bᵀ` where `B` has shape `[n, k]`, accumulating into `c`
/// of shape `[m, n]`.
///
/// # Panics
///
/// Panics on incompatible shapes.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: k,
        ldb: k,
    };
    gemm::<false, true>(&shape, a.data(), b.data(), 0..m, c.data_mut());
}

/// [`matmul_nt_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_nt_into`].
pub fn matmul_nt_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    let shape = GemmShape {
        k,
        n,
        lda: k,
        ldb: k,
    };
    if !rt.should_parallelize(m.saturating_mul(k).saturating_mul(n)) || m <= 1 {
        return gemm::<false, true>(&shape, a.data(), b.data(), 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        gemm::<false, true>(&shape, ad, bd, rows, cchunk);
    });
}

/// Shared body of the segmented-`k` NT product. A naive implementation runs
/// one full blocked GEMM per `seg`-wide depth segment; for the convolution
/// weight gradient `seg` is one sample's column count, which can be single
/// digits, and the per-call fixed costs (packing-buffer setup, block-loop
/// bookkeeping, repacking the same panels) swamp the arithmetic. This driver
/// instead packs each `A`/`B` panel once per cache block and walks the
/// segments *inside* the register-tile loop: the accumulator tile restarts
/// at every segment boundary and flushes into `C` per segment, which is the
/// exact `C += panel_sum` sequence the per-segment GEMMs produce — same
/// packed values, same microkernel, same flush points — so the result stays
/// bit-identical while the packing and driver overheads amortize across
/// `KC / seg` segments.
fn gemm_nt_segments(
    k: usize,
    n: usize,
    seg: usize,
    ad: &[f32],
    bd: &[f32],
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx::available() {
        return gemm_nt_seg_with::<avx::AvxFma>(k, n, seg, ad, bd, rows, cchunk);
    }
    gemm_nt_seg_with::<Portable>(k, n, seg, ad, bd, rows, cchunk)
}

/// [`gemm_nt_segments`] specialized to one microkernel. `A` is `[m, k]`
/// stored (`lda = k`), `B` is `[n, k]` stored and consumed transposed
/// (`ldb = k`).
///
/// Depth blocks never span a segment boundary: when `seg ≤ KC` a block
/// covers `⌊KC / seg⌋` whole segments, otherwise a segment is cut into
/// `KC`-deep blocks exactly like the blocked GEMM a per-segment call would
/// run, so every accumulator-flush boundary matches the naive sequence.
fn gemm_nt_seg_with<M: Micro>(
    k: usize,
    n: usize,
    seg: usize,
    ad: &[f32],
    bd: &[f32],
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    if rows.is_empty() || n == 0 || k == 0 {
        return;
    }
    let kc_max = k.min(KC.max(seg.min(KC)));
    let bstrips = n.min(NC).div_ceil(M::NR);
    let astrips = rows.len().min(M::MC).div_ceil(M::MR);
    PACK_SCRATCH.with(|scratch| {
        let (bpack, apack) = &mut *scratch.borrow_mut();
        bpack.resize(bstrips * M::NR * kc_max, 0.0);
        apack.resize(astrips * M::MR * kc_max, 0.0);
        let mut acc: Acc = [[0.0; NR_MAX]; MR_MAX];

        let mut jc = 0;
        while jc < n {
            let nc = (n - jc).min(NC);
            let mut pc = 0;
            while pc < k {
                // Whole segments per block when they fit; otherwise a
                // `KC`-deep slice of the current segment.
                let kc = if seg <= KC {
                    ((KC / seg) * seg).min(k - pc)
                } else {
                    (seg - pc % seg).min(KC)
                };
                let chunk = seg.min(kc);
                pack_b::<true>(bd, k, M::NR, pc..pc + kc, jc..jc + nc, bpack);
                let mut ic = rows.start;
                while ic < rows.end {
                    let mc = (rows.end - ic).min(M::MC);
                    pack_a::<false>(ad, k, M::MR, ic..ic + mc, pc..pc + kc, apack);
                    for jt in 0..nc.div_ceil(M::NR) {
                        let bp = &bpack[jt * kc * M::NR..(jt + 1) * kc * M::NR];
                        let j0 = jc + jt * M::NR;
                        let jvalid = (jc + nc - j0).min(M::NR);
                        for it in 0..mc.div_ceil(M::MR) {
                            let ap = &apack[it * kc * M::MR..(it + 1) * kc * M::MR];
                            let i0 = ic + it * M::MR;
                            let ivalid = (ic + mc - i0).min(M::MR);
                            let mut off = 0;
                            while off < kc {
                                let step = chunk.min(kc - off);
                                for row in acc.iter_mut().take(M::MR) {
                                    row[..M::NR].fill(0.0);
                                }
                                M::kernel(step, &ap[off * M::MR..], &bp[off * M::NR..], &mut acc);
                                for (ir, accr) in acc.iter().enumerate().take(ivalid) {
                                    let at = (i0 - rows.start + ir) * n + j0;
                                    for (cv, &av) in
                                        cchunk[at..at + jvalid].iter_mut().zip(accr.iter())
                                    {
                                        *cv += av;
                                    }
                                }
                                off += step;
                            }
                        }
                    }
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }
    });
}

/// `C += A · Bᵀ` (`A` is `[m, k]`, `B` is `[n, k]`) computed as one blocked
/// GEMM per `seg`-wide segment of `k`, ascending: the accumulator for every
/// output element restarts at each segment boundary, so the result is
/// bit-identical to calling [`matmul_nt_into`] once per segment with the
/// segment slices materialized as standalone matrices. This is the batched
/// form of the per-sample weight-gradient loop (`seg` = one sample's
/// columns), preserving the legacy accumulation order exactly.
///
/// # Panics
///
/// Panics on incompatible shapes or when `seg` is zero or does not divide
/// `k`.
pub fn matmul_nt_seg_into(a: &Tensor, b: &Tensor, seg: usize, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    assert!(
        seg > 0 && k % seg == 0,
        "matmul_nt_seg: segment {seg} must divide k={k}"
    );
    gemm_nt_segments(k, n, seg, a.data(), b.data(), 0..m, c.data_mut());
}

/// [`matmul_nt_seg_into`] with the output rows fanned out over `rt`'s
/// workers. Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`matmul_nt_seg_into`].
pub fn matmul_nt_seg_into_rt(rt: &Runtime, a: &Tensor, b: &Tensor, seg: usize, c: &mut Tensor) {
    let (m, k, n) = check_matmul_nt(a, b, c);
    assert!(
        seg > 0 && k % seg == 0,
        "matmul_nt_seg: segment {seg} must divide k={k}"
    );
    if !rt.should_parallelize(m.saturating_mul(k).saturating_mul(n)) || m <= 1 {
        return gemm_nt_segments(k, n, seg, a.data(), b.data(), 0..m, c.data_mut());
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        gemm_nt_segments(k, n, seg, ad, bd, rows, cchunk);
    });
}

impl Tensor {
    /// Returns `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use ft_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let m = self.shape()[0];
        let n = other.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        matmul_into(self, other, &mut c);
        c
    }
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), shape)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_t(&[7, 5], 1);
        let b = rand_t(&[5, 9], 2);
        assert_close(a.matmul(&b).data(), naive(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_t(&[4, 4], 3);
        assert_close(a.matmul(&Tensor::eye(4)).data(), a.data(), 1e-6);
    }

    /// The blocked driver agrees with the naive triple loop on dimensions
    /// straddling every tile boundary (`MR`/`NR` strips, `MC`/`KC`/`NC`
    /// panels, and the 1-sized degenerate edges), for all three layouts.
    #[test]
    fn blocked_matches_naive_on_tile_edges() {
        let ms = [1usize, 5, 6, 7, 97];
        let ks = [1usize, 3, 256, 257];
        let ns = [1usize, 8, 15, 17];
        let mut cases = Vec::new();
        for &m in &ms {
            for &k in &ks {
                for &n in &ns {
                    cases.push((m, k, n));
                }
            }
        }
        for (ci, &(m, k, n)) in cases.iter().enumerate() {
            let seed = 500 + ci as u64;
            let a = rand_t(&[m, k], seed);
            let at = a.transposed();
            let b = rand_t(&[k, n], seed + 1);
            let bt = b.transposed();
            let expect = naive(&a, &b);

            let mut c = Tensor::zeros(&[m, n]);
            matmul_into(&a, &b, &mut c);
            assert_close(c.data(), expect.data(), 1e-3);

            let mut c = Tensor::zeros(&[m, n]);
            matmul_tn_into(&at, &b, &mut c);
            assert_close(c.data(), expect.data(), 1e-3);

            let mut c = Tensor::zeros(&[m, n]);
            matmul_nt_into(&a, &bt, &mut c);
            assert_close(c.data(), expect.data(), 1e-3);
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = rand_t(&[6, 3], 4); // k=6, m=3
        let b = rand_t(&[6, 5], 5);
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_tn_into(&a, &b, &mut c);
        let expect = a.transposed().matmul(&b);
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = rand_t(&[3, 6], 6);
        let b = rand_t(&[5, 6], 7); // n=5, k=6
        let mut c = Tensor::zeros(&[3, 5]);
        matmul_nt_into(&a, &b, &mut c);
        let expect = a.matmul(&b.transposed());
        assert_close(c.data(), expect.data(), 1e-4);
    }

    #[test]
    fn into_variants_accumulate() {
        let a = rand_t(&[2, 2], 8);
        let b = rand_t(&[2, 2], 9);
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c);
        let expect = a.matmul(&b).add(&Tensor::ones(&[2, 2]));
        assert_close(c.data(), expect.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    /// `0 × NaN` and `0 × ∞` must reach the output as NaN: a zero in `A`
    /// is a value, not a structural hole, so it cannot short-circuit the
    /// multiply. (The pre-blocking kernels skipped `av == 0.0` and silently
    /// produced finite outputs from non-finite inputs.)
    #[test]
    fn zero_times_nonfinite_propagates() {
        let (m, k, n) = (3usize, 4usize, 5usize);
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let a = Tensor::zeros(&[m, k]); // every product is 0 × bad
            let at = Tensor::zeros(&[k, m]);
            let b = Tensor::from_vec(vec![bad; k * n], &[k, n]);
            let bt = Tensor::from_vec(vec![bad; n * k], &[n, k]);

            let mut c = Tensor::zeros(&[m, n]);
            matmul_into(&a, &b, &mut c);
            assert!(
                c.data().iter().all(|v| v.is_nan()),
                "matmul swallowed 0 x {bad}"
            );

            let mut c = Tensor::zeros(&[m, n]);
            matmul_tn_into(&at, &b, &mut c);
            assert!(
                c.data().iter().all(|v| v.is_nan()),
                "matmul_tn swallowed 0 x {bad}"
            );

            let mut c = Tensor::zeros(&[m, n]);
            matmul_nt_into(&a, &bt, &mut c);
            assert!(
                c.data().iter().all(|v| v.is_nan()),
                "matmul_nt swallowed 0 x {bad}"
            );

            // The parallel variants inherit the same semantics.
            let rt = Runtime::exact(3).with_min_work(0);
            let mut c = Tensor::zeros(&[m, n]);
            matmul_into_rt(&rt, &a, &b, &mut c);
            assert!(c.data().iter().all(|v| v.is_nan()), "matmul_rt");
            let mut c = Tensor::zeros(&[m, n]);
            matmul_tn_into_rt(&rt, &at, &b, &mut c);
            assert!(c.data().iter().all(|v| v.is_nan()), "matmul_tn_rt");
            let mut c = Tensor::zeros(&[m, n]);
            matmul_nt_into_rt(&rt, &a, &bt, &mut c);
            assert!(c.data().iter().all(|v| v.is_nan()), "matmul_nt_rt");
        }
    }

    /// Every parallel layout is bit-identical to its sequential kernel for
    /// every thread count, including threads > rows and single-row outputs.
    #[test]
    fn rt_variants_are_bit_identical() {
        let cases = [
            (17usize, 13usize, 11usize),
            (1, 8, 5),
            (4, 1, 3),
            (130, 300, 40),
        ];
        for (ci, &(m, k, n)) in cases.iter().enumerate() {
            let seed = 100 + ci as u64 * 10;
            let a = rand_t(&[m, k], seed);
            let at = rand_t(&[k, m], seed + 1);
            let b = rand_t(&[k, n], seed + 2);
            let bt = rand_t(&[n, k], seed + 3);
            for threads in [1usize, 2, 3, 7, 64] {
                let rt = Runtime::exact(threads).with_min_work(0);
                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_into(&a, &b, &mut seq);
                matmul_into_rt(&rt, &a, &b, &mut par);
                assert_eq!(seq.data(), par.data(), "matmul t={threads} {m}x{k}x{n}");

                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_tn_into(&at, &b, &mut seq);
                matmul_tn_into_rt(&rt, &at, &b, &mut par);
                assert_eq!(seq.data(), par.data(), "tn t={threads} {m}x{k}x{n}");

                let mut seq = Tensor::ones(&[m, n]);
                let mut par = Tensor::ones(&[m, n]);
                matmul_nt_into(&a, &bt, &mut seq);
                matmul_nt_into_rt(&rt, &a, &bt, &mut par);
                assert_eq!(seq.data(), par.data(), "nt t={threads} {m}x{k}x{n}");
            }
        }
    }

    /// The segmented NT product must be *bit-identical* to running one
    /// [`matmul_nt_into`] per materialized segment pair — that is the
    /// contract that lets the batched weight-gradient path replace the
    /// legacy per-sample loop without perturbing golden traces.
    #[test]
    fn nt_seg_matches_per_segment_calls_exactly() {
        let cases = [
            (5usize, 3usize, 4usize, 7usize), // m, seg, segs, n
            (1, 8, 2, 1),
            (13, 17, 7, 9),
            (6, 300, 2, 33),
        ];
        for (ci, &(m, seg, segs, n)) in cases.iter().enumerate() {
            let k = seg * segs;
            let seed = 900 + ci as u64 * 10;
            let a = rand_t(&[m, k], seed);
            let b = rand_t(&[n, k], seed + 1);

            let mut expect = Tensor::ones(&[m, n]);
            for s in 0..segs {
                let slice = |t: &Tensor, rows: usize| {
                    let mut out = vec![0.0f32; rows * seg];
                    for r in 0..rows {
                        out[r * seg..(r + 1) * seg]
                            .copy_from_slice(&t.data()[r * k + s * seg..][..seg]);
                    }
                    Tensor::from_vec(out, &[rows, seg])
                };
                matmul_nt_into(&slice(&a, m), &slice(&b, n), &mut expect);
            }

            let mut c = Tensor::ones(&[m, n]);
            matmul_nt_seg_into(&a, &b, seg, &mut c);
            assert_eq!(c.data(), expect.data(), "seq {m}x{k}({seg})x{n}");

            for threads in [1usize, 2, 4, 9] {
                let rt = Runtime::exact(threads).with_min_work(0);
                let mut p = Tensor::ones(&[m, n]);
                matmul_nt_seg_into_rt(&rt, &a, &b, seg, &mut p);
                assert_eq!(p.data(), expect.data(), "t={threads} {m}x{k}({seg})x{n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn nt_seg_rejects_ragged_segments() {
        let a = Tensor::zeros(&[2, 7]);
        let b = Tensor::zeros(&[3, 7]);
        let mut c = Tensor::zeros(&[2, 3]);
        matmul_nt_seg_into(&a, &b, 3, &mut c);
    }

    #[test]
    fn rt_empty_output_is_a_noop() {
        let rt = Runtime::exact(4).with_min_work(0);
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 5]);
        let mut c = Tensor::zeros(&[0, 5]);
        matmul_into_rt(&rt, &a, &b, &mut c);
        assert_eq!(c.numel(), 0);
    }
}
