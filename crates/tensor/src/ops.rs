//! Elementwise arithmetic and reductions on [`Tensor`].

use crate::Tensor;

impl Tensor {
    /// Elementwise sum, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard), producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for a in self.data_mut() {
            *a *= s;
        }
    }

    /// Returns a new tensor scaled by `s`.
    pub fn scaled(&self, s: f32) -> Tensor {
        let mut t = self.clone();
        t.scale(s);
        t
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&x| f(x)).collect(), self.shape())
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.data_mut() {
            *a = f(*a);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum absolute value; zero for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// The L2 norm of the flattened tensor.
    pub fn norm2(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index, matching `argmax` conventions.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(
            self.shape().len(),
            2,
            "argmax_rows requires a rank-2 tensor"
        );
        let (r, c) = (self.shape()[0], self.shape()[1]);
        assert!(c > 0, "argmax_rows requires at least one column");
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data()[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        out
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.data()
                .iter()
                .zip(other.data().iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = t(&[1.0]).add(&t(&[1.0, 2.0]));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0]));
        assert_eq!(a.data(), &[7.0, 9.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[3.5, 4.5]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 2.0 / 3.0);
        assert_eq!(a.max_abs(), 3.0);
        assert!((a.norm2() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn argmax_rows_picks_first_of_ties() {
        let m = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.5, 0.2, 0.1], &[2, 3]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn map_and_fill_zero() {
        let mut a = t(&[1.0, 4.0]).map(|x| x * x);
        assert_eq!(a.data(), &[1.0, 16.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }
}
