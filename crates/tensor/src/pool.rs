//! Pooling kernels (2×2 max pooling and global average pooling).
//!
//! Both forward kernels have `_rt` variants that fan the `n·c` planes out
//! over a [`Runtime`](ft_runtime::Runtime)'s workers; planes are written
//! independently, so the parallel results (including argmax caches) are
//! bit-identical to the sequential ones.

use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// Max-pools the plane range `planes`; `ochunk`/`achunk` hold exactly those
/// planes' outputs.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural operands
fn max_pool_planes(
    xd: &[f32],
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    planes: Range<usize>,
    ochunk: &mut [f32],
    achunk: &mut [usize],
) {
    for (local, plane) in planes.enumerate() {
        let base = plane * h * w;
        let obase = local * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best_idx = base + (2 * oy) * w + 2 * ox;
                let mut best = xd[best_idx];
                for (dy, dx) in [(0, 1), (1, 0), (1, 1)] {
                    let idx = base + (2 * oy + dy) * w + 2 * ox + dx;
                    if xd[idx] > best {
                        best = xd[idx];
                        best_idx = idx;
                    }
                }
                ochunk[obase + oy * ow + ox] = best;
                achunk[obase + oy * ow + ox] = best_idx;
            }
        }
    }
}

/// 2×2 max pooling with stride 2 over a `[n, c, h, w]` tensor.
///
/// Returns the pooled tensor and the flat argmax indices (into the input
/// buffer) needed by [`max_pool2x2_backward`]. Odd trailing rows/columns are
/// dropped, matching the common `floor` convention.
///
/// # Panics
///
/// Panics if `x` is not rank-4 or either spatial dim is < 2.
pub fn max_pool2x2(x: &Tensor) -> (Tensor, Vec<usize>) {
    max_pool2x2_rt(&Runtime::sequential(), x)
}

/// [`max_pool2x2`] with the `n·c` planes fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics if `x` is not rank-4 or either spatial dim is < 2.
pub fn max_pool2x2_rt(rt: &Runtime, x: &Tensor) -> (Tensor, Vec<usize>) {
    let mut out = Tensor::default();
    let mut arg = Vec::new();
    max_pool2x2_into_rt(rt, x, &mut out, &mut arg);
    (out, arg)
}

/// [`max_pool2x2_rt`] writing into caller-owned buffers: `out` and `arg`
/// are resized to the pooled geometry (allocation-free once warm), so the
/// training engine can reuse them across batches. Bit-identical to the
/// allocating form.
///
/// # Panics
///
/// Panics if `x` is not rank-4 or either spatial dim is < 2.
pub fn max_pool2x2_into_rt(rt: &Runtime, x: &Tensor, out: &mut Tensor, arg: &mut Vec<usize>) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "max_pool2x2 requires [n,c,h,w]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert!(
        h >= 2 && w >= 2,
        "max_pool2x2 needs spatial dims >= 2, got {h}x{w}"
    );
    let (oh, ow) = (h / 2, w / 2);
    out.resize_for_overwrite(&[n, c, oh, ow]);
    arg.clear();
    arg.resize(n * c * oh * ow, 0);
    let xd = x.data();
    let planes = n * c;
    if !rt.should_parallelize(planes.saturating_mul(h * w)) || planes <= 1 {
        return max_pool_planes(xd, h, w, oh, ow, 0..planes, out.data_mut(), arg);
    }
    // `split_rows_mut` chunks both buffers identically (same plane count,
    // same runtime), so zipping them pairs each range with its slices.
    let out_parts = rt.split_rows_mut(out.data_mut(), oh * ow);
    let arg_parts = rt.split_rows_mut(arg, oh * ow);
    let jobs: Vec<_> = out_parts
        .into_iter()
        .zip(arg_parts)
        .map(|((range, ochunk), (_, achunk))| (range, ochunk, achunk))
        .collect();
    rt.scatter(jobs, |(range, ochunk, achunk)| {
        max_pool_planes(xd, h, w, oh, ow, range, ochunk, achunk);
    });
}

/// Backward pass of [`max_pool2x2`]: routes each output gradient to the
/// argmax input position.
///
/// # Panics
///
/// Panics if `grad_out.numel() != arg.len()`.
pub fn max_pool2x2_backward(grad_out: &Tensor, arg: &[usize], input_shape: &[usize]) -> Tensor {
    let mut gx = Tensor::default();
    max_pool2x2_backward_into(grad_out, arg, input_shape, &mut gx);
    gx
}

/// [`max_pool2x2_backward`] writing into a caller-owned gradient tensor
/// (resized and zeroed in place; allocation-free once warm).
///
/// # Panics
///
/// Panics if `grad_out.numel() != arg.len()`.
pub fn max_pool2x2_backward_into(
    grad_out: &Tensor,
    arg: &[usize],
    input_shape: &[usize],
    gx: &mut Tensor,
) {
    assert_eq!(grad_out.numel(), arg.len(), "argmax cache length mismatch");
    gx.resize_zeroed(input_shape);
    let gd = gx.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(arg.iter()) {
        gd[idx] += g;
    }
}

/// Global average pooling over a `[n, c, h, w]` tensor, producing `[n, c]`.
///
/// # Panics
///
/// Panics if `x` is not rank-4.
pub fn avg_pool_global(x: &Tensor) -> Tensor {
    avg_pool_global_rt(&Runtime::sequential(), x)
}

/// [`avg_pool_global`] with the `n·c` planes fanned out over `rt`'s
/// workers. Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics if `x` is not rank-4.
pub fn avg_pool_global_rt(rt: &Runtime, x: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    avg_pool_global_into_rt(rt, x, &mut out);
    out
}

/// [`avg_pool_global_rt`] writing into a caller-owned tensor (resized in
/// place; allocation-free once warm). Bit-identical to the allocating form.
///
/// # Panics
///
/// Panics if `x` is not rank-4.
pub fn avg_pool_global_into_rt(rt: &Runtime, x: &Tensor, out: &mut Tensor) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "avg_pool_global requires [n,c,h,w]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let area = (h * w) as f32;
    out.resize_for_overwrite(&[n, c]);
    let xd = x.data();
    let pool_planes = |planes: Range<usize>, ochunk: &mut [f32]| {
        for (local, plane) in planes.enumerate() {
            let base = plane * h * w;
            let sum: f32 = xd[base..base + h * w].iter().sum();
            ochunk[local] = sum / area;
        }
    };
    let planes = n * c;
    if !rt.should_parallelize(planes.saturating_mul(h * w)) || planes <= 1 {
        return pool_planes(0..planes, out.data_mut());
    }
    let jobs = rt.split_rows_mut(out.data_mut(), 1);
    rt.scatter(jobs, |(range, ochunk)| pool_planes(range, ochunk));
}

/// Backward pass of [`avg_pool_global`]: spreads each gradient uniformly over
/// the spatial positions it averaged.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn avg_pool_global_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    let mut gx = Tensor::default();
    avg_pool_global_backward_into(grad_out, input_shape, &mut gx);
    gx
}

/// [`avg_pool_global_backward`] writing into a caller-owned gradient tensor
/// (resized in place; allocation-free once warm).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn avg_pool_global_backward_into(grad_out: &Tensor, input_shape: &[usize], gx: &mut Tensor) {
    assert_eq!(input_shape.len(), 4, "input shape must be [n,c,h,w]");
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    assert_eq!(grad_out.shape(), &[n, c], "grad_out must be [n,c]");
    let area = (h * w) as f32;
    gx.resize_for_overwrite(input_shape);
    let gd = gx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_out.data()[ni * c + ci] / area;
            let base = (ni * c + ci) * h * w;
            for v in &mut gd[base..base + h * w] {
                *v = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_forward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = max_pool2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (_, arg) = max_pool2x2(&x);
        let g = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let gx = max_pool2x2_backward(&g, &arg, &[1, 1, 2, 2]);
        assert_eq!(gx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 3]);
        let (y, _) = max_pool2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 1]);
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let y = avg_pool_global(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let gx = avg_pool_global_backward(&g, &[1, 2, 2, 2]);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_rt_variants_are_bit_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let x = Tensor::from_vec(
            (0..3 * 4 * 6 * 6)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
            &[3, 4, 6, 6],
        );
        let (seq_y, seq_arg) = max_pool2x2(&x);
        let seq_avg = avg_pool_global(&x);
        for threads in [1usize, 2, 5, 64] {
            let rt = Runtime::exact(threads).with_min_work(0);
            let (y, arg) = max_pool2x2_rt(&rt, &x);
            assert_eq!(y.data(), seq_y.data(), "maxpool threads={threads}");
            assert_eq!(arg, seq_arg, "argmax threads={threads}");
            let avg = avg_pool_global_rt(&rt, &x);
            assert_eq!(avg.data(), seq_avg.data(), "avgpool threads={threads}");
        }
    }

    #[test]
    fn pooling_gradient_check() {
        // Sum-of-output as loss: gradient wrt input of maxpool is an
        // indicator of argmax positions.
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.4, 0.3], &[1, 1, 2, 2]);
        let (y, arg) = max_pool2x2(&x);
        let g = Tensor::ones(y.shape());
        let gx = max_pool2x2_backward(&g, &arg, x.shape());
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }
}
