//! Pooling kernels (2×2 max pooling and global average pooling).

use crate::Tensor;

/// 2×2 max pooling with stride 2 over a `[n, c, h, w]` tensor.
///
/// Returns the pooled tensor and the flat argmax indices (into the input
/// buffer) needed by [`max_pool2x2_backward`]. Odd trailing rows/columns are
/// dropped, matching the common `floor` convention.
///
/// # Panics
///
/// Panics if `x` is not rank-4 or either spatial dim is < 2.
pub fn max_pool2x2(x: &Tensor) -> (Tensor, Vec<usize>) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "max_pool2x2 requires [n,c,h,w]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert!(
        h >= 2 && w >= 2,
        "max_pool2x2 needs spatial dims >= 2, got {h}x{w}"
    );
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = base + (2 * oy) * w + 2 * ox;
                    let mut best = xd[best_idx];
                    for (dy, dx) in [(0, 1), (1, 0), (1, 1)] {
                        let idx = base + (2 * oy + dy) * w + 2 * ox + dx;
                        if xd[idx] > best {
                            best = xd[idx];
                            best_idx = idx;
                        }
                    }
                    od[obase + oy * ow + ox] = best;
                    arg[obase + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

/// Backward pass of [`max_pool2x2`]: routes each output gradient to the
/// argmax input position.
///
/// # Panics
///
/// Panics if `grad_out.numel() != arg.len()`.
pub fn max_pool2x2_backward(grad_out: &Tensor, arg: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(grad_out.numel(), arg.len(), "argmax cache length mismatch");
    let mut gx = Tensor::zeros(input_shape);
    let gd = gx.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(arg.iter()) {
        gd[idx] += g;
    }
    gx
}

/// Global average pooling over a `[n, c, h, w]` tensor, producing `[n, c]`.
///
/// # Panics
///
/// Panics if `x` is not rank-4.
pub fn avg_pool_global(x: &Tensor) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 4, "avg_pool_global requires [n,c,h,w]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let area = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let sum: f32 = xd[base..base + h * w].iter().sum();
            od[ni * c + ci] = sum / area;
        }
    }
    out
}

/// Backward pass of [`avg_pool_global`]: spreads each gradient uniformly over
/// the spatial positions it averaged.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn avg_pool_global_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(input_shape.len(), 4, "input shape must be [n,c,h,w]");
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    assert_eq!(grad_out.shape(), &[n, c], "grad_out must be [n,c]");
    let area = (h * w) as f32;
    let mut gx = Tensor::zeros(input_shape);
    let gd = gx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_out.data()[ni * c + ci] / area;
            let base = (ni * c + ci) * h * w;
            for v in &mut gd[base..base + h * w] {
                *v = g;
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_forward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = max_pool2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (_, arg) = max_pool2x2(&x);
        let g = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let gx = max_pool2x2_backward(&g, &arg, &[1, 1, 2, 2]);
        assert_eq!(gx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 3]);
        let (y, _) = max_pool2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 1]);
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let y = avg_pool_global(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let gx = avg_pool_global_backward(&g, &[1, 2, 2, 2]);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pooling_gradient_check() {
        // Sum-of-output as loss: gradient wrt input of maxpool is an
        // indicator of argmax positions.
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.4, 0.3], &[1, 1, 2, 2]);
        let (y, arg) = max_pool2x2(&x);
        let g = Tensor::ones(y.shape());
        let gx = max_pool2x2_backward(&g, &arg, x.shape());
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }
}
