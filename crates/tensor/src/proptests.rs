//! Property-based tests for the tensor substrate, including the sparse
//! execution kernels (CSR round-trips and spmm-vs-matmul equivalence).

#![cfg(test)]

use crate::{
    bsr_dsmm_nt_into, bsr_spmm_into, col2im, dsmm_into, dsmm_nt_into, im2col, matmul_into,
    matmul_nt_into, matmul_tn_into, spmm_into, spmm_tn_into, ConvGeom, Tensor,
};
use ft_sparse::{BsrMatrix, CsrMatrix};
use proptest::prelude::*;

fn small_matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A · I = A and I · A = A.
    #[test]
    fn matmul_identity_laws(a in small_matrix(6)) {
        let (r, c) = (a.shape()[0], a.shape()[1]);
        let left = Tensor::eye(r).matmul(&a);
        let right = a.matmul(&Tensor::eye(c));
        for (x, y) in left.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// (A + B) · C = A·C + B·C (distributivity).
    #[test]
    fn matmul_distributes(
        dims in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut t = |r: usize, c: usize| {
            Tensor::from_vec((0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), &[r, c])
        };
        let a = t(m, k);
        let b = t(m, k);
        let c = t(k, n);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Scaling commutes with matmul: (s·A)·B = s·(A·B).
    #[test]
    fn matmul_scales(s in -3.0f32..3.0, a in small_matrix(5)) {
        let b = Tensor::eye(a.shape()[1]);
        let lhs = a.scaled(s).matmul(&b);
        let rhs = a.matmul(&b).scaled(s);
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in small_matrix(8)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    /// im2col of a zero image is zero; col2im of a zero matrix adds nothing.
    #[test]
    fn im2col_zero_preserving(h in 3usize..8, w in 3usize..8, k in 1usize..4) {
        prop_assume!(k <= h && k <= w);
        let g = ConvGeom { in_c: 2, in_h: h, in_w: w, kernel: k, stride: 1, pad: 0 };
        let x = vec![0.0f32; 2 * h * w];
        let mut col = vec![1.0f32; g.col_rows() * g.col_cols()];
        im2col(&x, &g, &mut col);
        prop_assert!(col.iter().all(|&v| v == 0.0));
        let mut out = vec![7.0f32; 2 * h * w];
        col2im(&vec![0.0; g.col_rows() * g.col_cols()], &g, &mut out);
        prop_assert!(out.iter().all(|&v| v == 7.0));
    }

    /// The sum of an im2col matrix with stride 1 / pad 0 counts each pixel
    /// once per window it appears in — total mass is conserved per window
    /// count (linearity sanity check).
    #[test]
    fn im2col_is_linear(h in 3usize..6, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let g = ConvGeom { in_c: 1, in_h: h, in_w: h, kernel: 2, stride: 1, pad: 0 };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x1: Vec<f32> = (0..h * h).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x2: Vec<f32> = (0..h * h).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n = g.col_rows() * g.col_cols();
        let (mut c1, mut c2, mut c12) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        im2col(&x1, &g, &mut c1);
        im2col(&x2, &g, &mut c2);
        let sum: Vec<f32> = x1.iter().zip(x2.iter()).map(|(a, b)| a + b).collect();
        im2col(&sum, &g, &mut c12);
        for i in 0..n {
            prop_assert!((c12[i] - c1[i] - c2[i]).abs() < 1e-5);
        }
    }
}

/// Rebuilds a `crate::CsrView` from a `CsrMatrix`'s raw parts.
///
/// The dev-dependency cycle (`ft-tensor` tests use `ft-sparse`, which
/// depends on `ft-tensor`) gives the test binary two distinct builds of
/// this crate, so `CsrMatrix::view()`'s `CsrView` is a different *type*
/// than `crate::CsrView` even though it is the same code. Reassembling the
/// view from raw slices sidesteps that.
fn view_of(csr: &CsrMatrix) -> crate::CsrView<'_> {
    crate::CsrView {
        rows: csr.rows(),
        cols: csr.cols(),
        row_ptr: csr.row_ptr(),
        col_idx: csr.col_idx(),
        vals: csr.vals(),
    }
}

/// A random mask + weight buffer for a `rows × cols` matrix: roughly a
/// `density` fraction of coordinates is alive, and some alive coordinates
/// hold an exact 0.0 (modelling freshly grown weights).
fn masked_weights(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<bool>, Vec<f32>)> {
    (1..=max_dim, 1..=max_dim, 0.0f64..1.0, 0u64..1_000).prop_map(|(rows, cols, density, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mask: Vec<bool> = (0..rows * cols)
            .map(|_| rng.gen_range(0.0f64..1.0) < density)
            .collect();
        let weights: Vec<f32> = mask
            .iter()
            .map(|&alive| {
                if !alive || rng.gen_range(0.0f64..1.0) < 0.1 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        (rows, cols, mask, weights)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR round-trip: mask + flat params → CSR → dense reproduces the
    /// masked weights exactly, and the structure tracks the mask (not the
    /// zero pattern of the values).
    #[test]
    fn csr_roundtrip_reproduces_masked_weights((rows, cols, mask, weights) in masked_weights(12)) {
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        prop_assert_eq!(csr.nnz(), mask.iter().filter(|&&b| b).count());
        let dense = csr.to_dense();
        for i in 0..rows * cols {
            let expect = if mask[i] { weights[i] } else { 0.0 };
            prop_assert!(dense[i] == expect, "index {}: {} vs {}", i, dense[i], expect);
        }
    }

    /// Refreshing values after a simulated optimizer step keeps CSR and
    /// masked-dense views identical.
    #[test]
    fn csr_refresh_tracks_updates((rows, cols, mask, weights) in masked_weights(10), delta in -1.0f32..1.0) {
        let mut csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let updated: Vec<f32> = weights.iter().map(|&w| w + delta).collect();
        csr.refresh_values(&updated);
        let dense = csr.to_dense();
        for i in 0..rows * cols {
            let expect = if mask[i] { updated[i] } else { 0.0 };
            prop_assert!(dense[i] == expect);
        }
    }

    /// `spmm_into` agrees with the dense GEMM on the mask-zeroed matrix.
    #[test]
    fn spmm_matches_matmul((rows, cols, mask, weights) in masked_weights(9), n in 1usize..8) {
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let dense = Tensor::from_vec(csr.to_dense(), &[rows, cols]);
        let b = rand_matrix(cols, n, 42);
        let mut out_sparse = Tensor::zeros(&[rows, n]);
        let mut out_dense = Tensor::zeros(&[rows, n]);
        spmm_into(view_of(&csr), &b, &mut out_sparse);
        matmul_into(&dense, &b, &mut out_dense);
        close(out_sparse.data(), out_dense.data());
    }

    /// `spmm_tn_into` agrees with the dense transposed GEMM.
    #[test]
    fn spmm_tn_matches_matmul_tn((rows, cols, mask, weights) in masked_weights(9), n in 1usize..8) {
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let dense = Tensor::from_vec(csr.to_dense(), &[rows, cols]);
        let b = rand_matrix(rows, n, 43);
        let mut out_sparse = Tensor::zeros(&[cols, n]);
        let mut out_dense = Tensor::zeros(&[cols, n]);
        spmm_tn_into(view_of(&csr), &b, &mut out_sparse);
        matmul_tn_into(&dense, &b, &mut out_dense);
        close(out_sparse.data(), out_dense.data());
    }

    /// The dense×sparse kernels agree with their dense counterparts.
    #[test]
    fn dsmm_variants_match_dense((rows, cols, mask, weights) in masked_weights(9), m in 1usize..8) {
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let dense = Tensor::from_vec(csr.to_dense(), &[rows, cols]);
        // C += A · S
        let a = rand_matrix(m, rows, 44);
        let mut out_sparse = Tensor::zeros(&[m, cols]);
        let mut out_dense = Tensor::zeros(&[m, cols]);
        dsmm_into(&a, view_of(&csr), &mut out_sparse);
        matmul_into(&a, &dense, &mut out_dense);
        close(out_sparse.data(), out_dense.data());
        // C += A · Sᵀ
        let a = rand_matrix(m, cols, 45);
        let mut out_sparse = Tensor::zeros(&[m, rows]);
        let mut out_dense = Tensor::zeros(&[m, rows]);
        dsmm_nt_into(&a, view_of(&csr), &mut out_sparse);
        matmul_nt_into(&a, &dense, &mut out_dense);
        close(out_sparse.data(), out_dense.data());
    }

    /// The runtime determinism contract: for arbitrary shapes, densities,
    /// and thread counts, the parallel matmul / spmm / sddmm kernels are
    /// **bit-for-bit** equal to their sequential twins (`==` on the raw
    /// f32 buffers, no tolerance).
    #[test]
    fn rt_kernels_bit_equal_sequential(
        (rows, cols, mask, weights) in masked_weights(9),
        n in 1usize..8,
        threads in 1usize..9,
    ) {
        let rt = ft_runtime::Runtime::exact(threads).with_min_work(0);
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let dense = Tensor::from_vec(csr.to_dense(), &[rows, cols]);

        // matmul: C += D · B
        let b = rand_matrix(cols, n, 46);
        let mut seq = Tensor::ones(&[rows, n]);
        let mut par = Tensor::ones(&[rows, n]);
        matmul_into(&dense, &b, &mut seq);
        crate::matmul_into_rt(&rt, &dense, &b, &mut par);
        prop_assert_eq!(seq.data(), par.data());

        // spmm: C += S · B
        let mut seq = Tensor::ones(&[rows, n]);
        let mut par = Tensor::ones(&[rows, n]);
        spmm_into(view_of(&csr), &b, &mut seq);
        crate::spmm_into_rt(&rt, view_of(&csr), &b, &mut par);
        prop_assert_eq!(seq.data(), par.data());

        // sddmm_nt: vals += (A · Bᵀ) ⊙ structure(S)
        let a = rand_matrix(rows, n, 47);
        let bt = rand_matrix(cols, n, 48);
        let mut seq = vec![0.25f32; csr.nnz()];
        let mut par = vec![0.25f32; csr.nnz()];
        crate::sddmm_nt_into(view_of(&csr), &a, &bt, &mut seq);
        crate::sddmm_nt_into_rt(&rt, view_of(&csr), &a, &bt, &mut par);
        prop_assert_eq!(seq, par);
    }
}

/// Dimensions adversarial to the blocked GEMM: 1, the register-tile edges
/// and cache-block edges ± 1, and values straddling the packing panels —
/// every combination exercises partial microtiles, partial panels, and
/// tall-skinny / wide shapes.
fn adversarial_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 20] = [
        1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 97, 130, 255, 257,
    ];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

/// Thread counts adversarial to the row-splitting fan-out: non-divisors of
/// most row counts and a pool far larger than any test matrix.
fn adversarial_threads() -> impl Strategy<Value = usize> {
    (0usize..4).prop_map(|i| [1usize, 2, 3, 64][i])
}

/// Plain-triple-loop reference GEMM with `f64` accumulation.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The blocked, packed GEMM agrees with a naive reference on shapes
    /// chosen to straddle every tile and panel boundary, for all three
    /// layouts.
    #[test]
    fn blocked_gemm_matches_naive_on_adversarial_shapes(
        m in adversarial_dim(),
        k in adversarial_dim(),
        n in adversarial_dim(),
        seed in 0u64..1_000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0xDEAD);
        let reference = naive_matmul(a.data(), b.data(), m, k, n);
        let tol = 1e-4 * (k as f32).sqrt().max(1.0);

        let mut c = Tensor::zeros(&[m, n]);
        matmul_into(&a, &b, &mut c);
        for (i, (x, y)) in c.data().iter().zip(reference.iter()).enumerate() {
            prop_assert!((x - y).abs() <= tol, "matmul index {}: {} vs {}", i, x, y);
        }

        let at = a.transposed();
        let mut c = Tensor::zeros(&[m, n]);
        matmul_tn_into(&at, &b, &mut c);
        for (i, (x, y)) in c.data().iter().zip(reference.iter()).enumerate() {
            prop_assert!((x - y).abs() <= tol, "matmul_tn index {}: {} vs {}", i, x, y);
        }

        let bt = b.transposed();
        let mut c = Tensor::zeros(&[m, n]);
        matmul_nt_into(&a, &bt, &mut c);
        for (i, (x, y)) in c.data().iter().zip(reference.iter()).enumerate() {
            prop_assert!((x - y).abs() <= tol, "matmul_nt index {}: {} vs {}", i, x, y);
        }
    }

    /// The blocked dense `_rt` kernels stay bit-identical to sequential on
    /// adversarial shapes at awkward thread counts (non-divisors of the row
    /// count and pools larger than the matrix).
    #[test]
    fn blocked_gemm_rt_bit_equal_on_adversarial_shapes(
        m in adversarial_dim(),
        k in adversarial_dim(),
        n in adversarial_dim(),
        threads in adversarial_threads(),
        seed in 0u64..1_000,
    ) {
        let rt = ft_runtime::Runtime::exact(threads).with_min_work(0);
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0xBEEF);
        let mut seq = Tensor::ones(&[m, n]);
        let mut par = Tensor::ones(&[m, n]);
        matmul_into(&a, &b, &mut seq);
        crate::matmul_into_rt(&rt, &a, &b, &mut par);
        prop_assert_eq!(seq.data(), par.data());
    }
}

/// Rebuilds a `crate::BsrView` from a `BsrMatrix`'s raw parts (same
/// dev-dependency double-build workaround as [`view_of`]).
fn bsr_view_of(bsr: &BsrMatrix) -> crate::BsrView<'_> {
    crate::BsrView {
        rows: bsr.rows(),
        cols: bsr.cols(),
        block: bsr.block(),
        row_ptr: bsr.row_ptr(),
        col_idx: bsr.col_idx(),
        vals: bsr.vals(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BSR and CSR pack the same mask + weights to the same dense matrix,
    /// for arbitrary tile edges (including ones that don't divide the
    /// shape).
    #[test]
    fn bsr_csr_pack_equivalence(
        (rows, cols, mask, weights) in masked_weights(12),
        block in 1usize..6,
    ) {
        let bsr = BsrMatrix::from_mask_values(&mask, &weights, rows, cols, block);
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        prop_assert_eq!(bsr.to_dense(), csr.to_dense());
        prop_assert_eq!(bsr.nnz(), csr.nnz());
    }

    /// The BSR kernels agree with their CSR counterparts on the same mask,
    /// and their `_rt` variants are bit-identical to sequential.
    #[test]
    fn bsr_kernels_match_csr(
        (rows, cols, mask, weights) in masked_weights(9),
        block in 1usize..6,
        n in 1usize..8,
        threads in adversarial_threads(),
    ) {
        let bsr = BsrMatrix::from_mask_values(&mask, &weights, rows, cols, block);
        let csr = CsrMatrix::from_mask_values(&mask, &weights, rows, cols);
        let rt = ft_runtime::Runtime::exact(threads).with_min_work(0);

        // C += S · B
        let b = rand_matrix(cols, n, 49);
        let mut from_bsr = Tensor::ones(&[rows, n]);
        let mut from_csr = Tensor::ones(&[rows, n]);
        bsr_spmm_into(bsr_view_of(&bsr), &b, &mut from_bsr);
        spmm_into(view_of(&csr), &b, &mut from_csr);
        close(from_bsr.data(), from_csr.data());
        let mut par = Tensor::ones(&[rows, n]);
        crate::bsr_spmm_into_rt(&rt, bsr_view_of(&bsr), &b, &mut par);
        prop_assert_eq!(from_bsr.data(), par.data());

        // C += A · Sᵀ
        let a = rand_matrix(n, cols, 50);
        let mut from_bsr = Tensor::ones(&[n, rows]);
        let mut from_csr = Tensor::ones(&[n, rows]);
        bsr_dsmm_nt_into(&a, bsr_view_of(&bsr), &mut from_bsr);
        dsmm_nt_into(&a, view_of(&csr), &mut from_csr);
        close(from_bsr.data(), from_csr.data());
        let mut par = Tensor::ones(&[n, rows]);
        crate::bsr_dsmm_nt_into_rt(&rt, &a, bsr_view_of(&bsr), &mut par);
        prop_assert_eq!(from_bsr.data(), par.data());
    }
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        &[rows, cols],
    )
}

fn close(a: &[f32], b: &[f32]) {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() <= 1e-4, "index {i}: {x} vs {y}");
    }
}
