//! Property-based tests for the tensor substrate.

#![cfg(test)]

use crate::{col2im, im2col, ConvGeom, Tensor};
use proptest::prelude::*;

fn small_matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A · I = A and I · A = A.
    #[test]
    fn matmul_identity_laws(a in small_matrix(6)) {
        let (r, c) = (a.shape()[0], a.shape()[1]);
        let left = Tensor::eye(r).matmul(&a);
        let right = a.matmul(&Tensor::eye(c));
        for (x, y) in left.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// (A + B) · C = A·C + B·C (distributivity).
    #[test]
    fn matmul_distributes(
        dims in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut t = |r: usize, c: usize| {
            Tensor::from_vec((0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), &[r, c])
        };
        let a = t(m, k);
        let b = t(m, k);
        let c = t(k, n);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Scaling commutes with matmul: (s·A)·B = s·(A·B).
    #[test]
    fn matmul_scales(s in -3.0f32..3.0, a in small_matrix(5)) {
        let b = Tensor::eye(a.shape()[1]);
        let lhs = a.scaled(s).matmul(&b);
        let rhs = a.matmul(&b).scaled(s);
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in small_matrix(8)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    /// im2col of a zero image is zero; col2im of a zero matrix adds nothing.
    #[test]
    fn im2col_zero_preserving(h in 3usize..8, w in 3usize..8, k in 1usize..4) {
        prop_assume!(k <= h && k <= w);
        let g = ConvGeom { in_c: 2, in_h: h, in_w: w, kernel: k, stride: 1, pad: 0 };
        let x = vec![0.0f32; 2 * h * w];
        let mut col = vec![1.0f32; g.col_rows() * g.col_cols()];
        im2col(&x, &g, &mut col);
        prop_assert!(col.iter().all(|&v| v == 0.0));
        let mut out = vec![7.0f32; 2 * h * w];
        col2im(&vec![0.0; g.col_rows() * g.col_cols()], &g, &mut out);
        prop_assert!(out.iter().all(|&v| v == 7.0));
    }

    /// The sum of an im2col matrix with stride 1 / pad 0 counts each pixel
    /// once per window it appears in — total mass is conserved per window
    /// count (linearity sanity check).
    #[test]
    fn im2col_is_linear(h in 3usize..6, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let g = ConvGeom { in_c: 1, in_h: h, in_w: h, kernel: 2, stride: 1, pad: 0 };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x1: Vec<f32> = (0..h * h).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x2: Vec<f32> = (0..h * h).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n = g.col_rows() * g.col_cols();
        let (mut c1, mut c2, mut c12) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        im2col(&x1, &g, &mut c1);
        im2col(&x2, &g, &mut c2);
        let sum: Vec<f32> = x1.iter().zip(x2.iter()).map(|(a, b)| a + b).collect();
        im2col(&sum, &g, &mut c12);
        for i in 0..n {
            prop_assert!((c12[i] - c1[i] - c2[i]).abs() < 1e-5);
        }
    }
}
