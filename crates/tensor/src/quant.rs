//! Affine int8 quantization primitives for the wire codecs.
//!
//! One quantized block maps `f32` values into `i8` codes through an affine
//! transform `x ≈ min + scale · (code + 128)`: the block's `[min, max]`
//! range is split into 255 uniform steps, so the worst-case reconstruction
//! error of any value inside the range is `scale / 2 = (max - min) / 510`.
//! Non-finite inputs are clamped to the block range; an all-equal (or empty)
//! block has `scale = 0` and reconstructs exactly.

/// Affine parameters of one quantized block: `value ≈ min + scale · step`
/// with `step = code as i16 + 128 ∈ [0, 255]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Step size `(max - min) / 255`; `0.0` for constant blocks.
    pub scale: f32,
    /// Value represented by code `-128`.
    pub min: f32,
}

/// Quantizes `values` into `i8` codes, returning the affine parameters.
///
/// The output slice must have the same length as the input. The block range
/// is computed over the *finite* inputs; non-finite values quantize to the
/// nearest range endpoint.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn quantize_affine_i8(values: &[f32], out: &mut [i8]) -> QuantParams {
    assert_eq!(
        out.len(),
        values.len(),
        "quantization buffer length mismatch"
    );
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        // Empty, all-non-finite, or constant block: every code is -128 and
        // reconstruction returns `min` exactly.
        let min = if lo.is_finite() { lo } else { 0.0 };
        out.fill(-128);
        return QuantParams { scale: 0.0, min };
    }
    let scale = (hi - lo) / 255.0;
    let inv = 1.0 / scale;
    for (o, &v) in out.iter_mut().zip(values.iter()) {
        let clamped = if v.is_finite() { v.clamp(lo, hi) } else { lo };
        let step = ((clamped - lo) * inv).round().clamp(0.0, 255.0);
        *o = (step as i16 - 128) as i8;
    }
    QuantParams { scale, min: lo }
}

/// Reconstructs one quantized code.
#[inline]
pub fn dequantize_one(code: i8, params: QuantParams) -> f32 {
    params.min + params.scale * (code as i16 + 128) as f32
}

/// Reconstructs a block of codes into `out` (same length).
///
/// # Panics
///
/// Panics if `out.len() != codes.len()`.
pub fn dequantize_affine_i8(codes: &[i8], params: QuantParams, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        codes.len(),
        "dequantization buffer length mismatch"
    );
    for (o, &c) in out.iter_mut().zip(codes.iter()) {
        *o = dequantize_one(c, params);
    }
}

/// Worst-case absolute reconstruction error of a block quantized with
/// `params`: half a quantization step.
pub fn quant_error_bound(params: QuantParams) -> f32 {
    0.5 * params.scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[f32]) -> (Vec<f32>, QuantParams) {
        let mut codes = vec![0i8; values.len()];
        let p = quantize_affine_i8(values, &mut codes);
        let mut back = vec![0.0f32; values.len()];
        dequantize_affine_i8(&codes, p, &mut back);
        (back, p)
    }

    #[test]
    fn endpoints_reconstruct_exactly() {
        let (back, p) = roundtrip(&[-1.0, 0.25, 1.0]);
        assert_eq!(back[0], -1.0);
        // The top code is 127 → min + scale*255 = max.
        assert!((back[2] - 1.0).abs() < 1e-6);
        assert!((p.scale - 2.0 / 255.0).abs() < 1e-7);
    }

    #[test]
    fn constant_block_is_exact() {
        let (back, p) = roundtrip(&[3.5; 7]);
        assert_eq!(p.scale, 0.0);
        assert_eq!(back, vec![3.5; 7]);
    }

    #[test]
    fn empty_block_is_fine() {
        let (back, p) = roundtrip(&[]);
        assert!(back.is_empty());
        assert_eq!(p.scale, 0.0);
    }

    #[test]
    fn non_finite_values_clamp_to_range() {
        let mut codes = vec![0i8; 4];
        let p = quantize_affine_i8(&[f32::NAN, -2.0, f32::INFINITY, 2.0], &mut codes);
        let mut back = vec![0.0f32; 4];
        dequantize_affine_i8(&codes, p, &mut back);
        assert!(back.iter().all(|v| v.is_finite()));
        assert!((-2.0..=2.0).contains(&back[0]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip error never exceeds the documented half-step bound.
        #[test]
        fn codec_quant_roundtrip_within_half_step(
            values in proptest::collection::vec(-10.0f32..10.0, 1..200),
        ) {
            let (back, p) = roundtrip(&values);
            let bound = quant_error_bound(p) + 1e-6;
            for (&v, &b) in values.iter().zip(back.iter()) {
                prop_assert!((v - b).abs() <= bound, "{v} -> {b} exceeds {bound}");
            }
        }
    }
}
