//! Sparse matrix kernels over a borrowed CSR view.
//!
//! These are the execution back-end of the workspace's sparse engine: when a
//! layer's weight density drops below the dispatch crossover, `ft-nn`
//! repacks the weight into CSR (see `ft_sparse::CsrMatrix`) and routes its
//! GEMMs here instead of the dense kernels in [`crate::matmul`]. Each kernel
//! touches only the stored nonzeros, so work scales with `nnz` rather than
//! `rows · cols`.
//!
//! Kernel naming mirrors the dense kernels (`S` is the CSR operand, `A`/`B`
//! dense):
//!
//! - [`spmm_into`]: `C += S · B` (sparse × dense)
//! - [`spmm_tn_into`]: `C += Sᵀ · B`
//! - [`dsmm_into`]: `C += A · S` (dense × sparse)
//! - [`dsmm_nt_into`]: `C += A · Sᵀ`
//! - [`sddmm_nt_into`]: `vals[nz] += A[row(nz), :] · B[col(nz), :]` — the
//!   sampled dense–dense product that computes weight gradients only at
//!   mask-alive coordinates
//! - [`sddmm_tn_into`]: `vals[nz] += Σₙ A[n, row(nz)] · B[n, col(nz)]`
//!
//! All kernels accumulate into their output, matching the dense `_into`
//! conventions.
//!
//! Every kernel also has an `_rt` variant taking a
//! [`Runtime`](ft_runtime::Runtime): output rows (for the GEMM-shaped
//! kernels) or CSR rows (for the sampled products) are partitioned into
//! deterministic contiguous chunks and each worker runs the same loop body
//! over its range — parallel results are bit-for-bit identical to the
//! sequential kernels for any thread count.

use crate::Tensor;
use ft_runtime::Runtime;
use std::ops::Range;

/// A borrowed compressed-sparse-row matrix.
///
/// `row_ptr` has `rows + 1` entries; row `r`'s nonzeros live at
/// `row_ptr[r]..row_ptr[r + 1]` in `col_idx` / `vals`. Column indices are
/// `u32` to halve index memory traffic (no layer in this workspace is
/// anywhere near 2³² columns).
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    /// Number of rows of the logical dense matrix.
    pub rows: usize,
    /// Number of columns of the logical dense matrix.
    pub cols: usize,
    /// Row start offsets (`rows + 1` entries, last is `nnz`).
    pub row_ptr: &'a [usize],
    /// Column index of each stored entry.
    pub col_idx: &'a [u32],
    /// Value of each stored entry.
    pub vals: &'a [f32],
}

impl<'a> CsrView<'a> {
    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Checks the structural invariants (row pointer monotone and in range,
    /// column indices in range, parallel arrays equal length).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert_eq!(
            self.row_ptr.len(),
            self.rows + 1,
            "csr row_ptr must have rows + 1 entries"
        );
        assert_eq!(
            self.col_idx.len(),
            self.vals.len(),
            "csr col_idx/vals length mismatch"
        );
        assert_eq!(
            *self.row_ptr.last().unwrap_or(&0),
            self.vals.len(),
            "csr row_ptr must end at nnz"
        );
        assert!(
            self.row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "csr row_ptr must be non-decreasing"
        );
        debug_assert!(
            self.col_idx.iter().all(|&c| (c as usize) < self.cols),
            "csr column index out of range"
        );
    }
}

/// `C += S[m×k] · B[k×n]`.
///
/// The sparse analogue of [`crate::matmul_into`]: row `i` of `C` accumulates
/// `v · B[j, :]` for every stored `(i, j, v)`, streaming `B` and `C` rows.
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
///
/// # Examples
///
/// ```
/// use ft_tensor::{spmm_into, CsrView, Tensor};
///
/// // S = [[2, 0], [0, 3]] in CSR.
/// let s = CsrView { rows: 2, cols: 2, row_ptr: &[0, 1, 2], col_idx: &[0, 1], vals: &[2.0, 3.0] };
/// let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let mut c = Tensor::zeros(&[2, 2]);
/// spmm_into(s, &b, &mut c);
/// assert_eq!(c.data(), &[2.0, 4.0, 9.0, 12.0]);
/// ```
pub fn spmm_into(s: CsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_spmm(&s, b, c);
    spmm_rows(s, b.data(), n, 0..s.rows, c.data_mut());
}

/// [`spmm_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`spmm_into`].
pub fn spmm_into_rt(rt: &Runtime, s: CsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_spmm(&s, b, c);
    if !rt.should_parallelize(s.nnz().saturating_mul(n)) || s.rows <= 1 {
        return spmm_rows(s, b.data(), n, 0..s.rows, c.data_mut());
    }
    let bd = b.data();
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        spmm_rows(s, bd, n, rows, cchunk);
    });
}

fn check_spmm(s: &CsrView<'_>, b: &Tensor, c: &Tensor) -> usize {
    s.validate();
    let (k, n) = dims2(b, "B");
    assert_eq!(k, s.cols, "spmm inner dims differ: {} vs {k}", s.cols);
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (s.rows, n), "spmm output shape mismatch");
    n
}

/// Column-block width for [`spmm_rows`]: the kernel sweeps `B` and `C` in
/// `SPMM_NC`-column slices so the gathered `B` rows of one slice stay
/// cache-resident across all the sparse rows that touch them.
const SPMM_NC: usize = 256;

/// `C += S · B` restricted to the output-row range `rows`; `cchunk` holds
/// exactly those rows.
///
/// Blocked two ways, neither of which changes the per-element accumulation
/// order (ascending stored-entry order, exactly the naive kernel's):
///
/// - columns are processed in [`SPMM_NC`]-wide slices (the blocking knob of
///   the dense driver applied to the sparse streaming kernel), and
/// - stored entries are consumed four at a time, so each `C` row slice is
///   loaded and stored once per quad instead of once per entry — the quad's
///   four multiply-adds are issued sequentially per output element, keeping
///   results bit-identical to the one-entry-at-a-time loop.
///
/// With the `simd` feature on a CPU with AVX2+FMA, the same loop runs with
/// explicit fused multiply-adds (see [`avx::spmm_rows_fma`]); like the dense
/// kernels, fusion rounds differently from the portable mul-then-add path,
/// but the choice is fixed per process so sequential and parallel runs stay
/// bit-identical to each other.
fn spmm_rows(s: CsrView<'_>, bd: &[f32], n: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::matmul::simd_active() {
        // SAFETY: `simd_active` verified avx2+fma at runtime.
        return unsafe { avx::spmm_rows_fma(s, bd, n, rows, cchunk) };
    }
    spmm_rows_portable(s, bd, n, rows, cchunk)
}

fn spmm_rows_portable(
    s: CsrView<'_>,
    bd: &[f32],
    n: usize,
    rows: Range<usize>,
    cchunk: &mut [f32],
) {
    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(SPMM_NC);
        for (local, i) in rows.clone().enumerate() {
            let crow = &mut cchunk[local * n + jc..local * n + jc + nc];
            let (start, end) = (s.row_ptr[i], s.row_ptr[i + 1]);
            let mut nz = start;
            while nz + 4 <= end {
                let j0 = s.col_idx[nz] as usize;
                let j1 = s.col_idx[nz + 1] as usize;
                let j2 = s.col_idx[nz + 2] as usize;
                let j3 = s.col_idx[nz + 3] as usize;
                let (v0, v1, v2, v3) = (s.vals[nz], s.vals[nz + 1], s.vals[nz + 2], s.vals[nz + 3]);
                let b0 = &bd[j0 * n + jc..][..nc];
                let b1 = &bd[j1 * n + jc..][..nc];
                let b2 = &bd[j2 * n + jc..][..nc];
                let b3 = &bd[j3 * n + jc..][..nc];
                for (idx, cv) in crow.iter_mut().enumerate() {
                    let mut acc = *cv;
                    acc += v0 * b0[idx];
                    acc += v1 * b1[idx];
                    acc += v2 * b2[idx];
                    acc += v3 * b3[idx];
                    *cv = acc;
                }
                nz += 4;
            }
            while nz < end {
                let (j, v) = (s.col_idx[nz] as usize, s.vals[nz]);
                let brow = &bd[j * n + jc..][..nc];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += v * bv;
                }
                nz += 1;
            }
        }
        jc += nc;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use super::{CsrView, SPMM_NC};
    use std::arch::x86_64::*;
    use std::ops::Range;

    /// [`super::spmm_rows_portable`] with explicit AVX2 fused multiply-adds:
    /// same column blocking, same four-entries-at-a-time consumption, same
    /// ascending per-element accumulation order. The column slice is swept
    /// in 8-lane vectors with a scalar `mul_add` tail — `f32::mul_add` is
    /// the same fused IEEE operation as `_mm256_fmadd_ps`, so lane width
    /// doesn't affect results.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmm_rows_fma(
        s: CsrView<'_>,
        bd: &[f32],
        n: usize,
        rows: Range<usize>,
        cchunk: &mut [f32],
    ) {
        let mut jc = 0;
        while jc < n {
            let nc = (n - jc).min(SPMM_NC);
            for (local, i) in rows.clone().enumerate() {
                let crow = &mut cchunk[local * n + jc..local * n + jc + nc];
                let (start, end) = (s.row_ptr[i], s.row_ptr[i + 1]);
                let mut nz = start;
                while nz + 4 <= end {
                    let j0 = s.col_idx[nz] as usize;
                    let j1 = s.col_idx[nz + 1] as usize;
                    let j2 = s.col_idx[nz + 2] as usize;
                    let j3 = s.col_idx[nz + 3] as usize;
                    let (v0, v1, v2, v3) =
                        (s.vals[nz], s.vals[nz + 1], s.vals[nz + 2], s.vals[nz + 3]);
                    let b0 = &bd[j0 * n + jc..][..nc];
                    let b1 = &bd[j1 * n + jc..][..nc];
                    let b2 = &bd[j2 * n + jc..][..nc];
                    let b3 = &bd[j3 * n + jc..][..nc];
                    // SAFETY: all slices checked to length nc; idx + 8 <= nc
                    // inside the vector loop.
                    unsafe {
                        let (w0, w1, w2, w3) = (
                            _mm256_set1_ps(v0),
                            _mm256_set1_ps(v1),
                            _mm256_set1_ps(v2),
                            _mm256_set1_ps(v3),
                        );
                        let mut idx = 0usize;
                        while idx + 8 <= nc {
                            let cp = crow.as_mut_ptr().add(idx);
                            let mut acc = _mm256_loadu_ps(cp);
                            acc = _mm256_fmadd_ps(w0, _mm256_loadu_ps(b0.as_ptr().add(idx)), acc);
                            acc = _mm256_fmadd_ps(w1, _mm256_loadu_ps(b1.as_ptr().add(idx)), acc);
                            acc = _mm256_fmadd_ps(w2, _mm256_loadu_ps(b2.as_ptr().add(idx)), acc);
                            acc = _mm256_fmadd_ps(w3, _mm256_loadu_ps(b3.as_ptr().add(idx)), acc);
                            _mm256_storeu_ps(cp, acc);
                            idx += 8;
                        }
                        while idx < nc {
                            let mut acc = crow[idx];
                            acc = v0.mul_add(b0[idx], acc);
                            acc = v1.mul_add(b1[idx], acc);
                            acc = v2.mul_add(b2[idx], acc);
                            acc = v3.mul_add(b3[idx], acc);
                            crow[idx] = acc;
                            idx += 1;
                        }
                    }
                    nz += 4;
                }
                while nz < end {
                    let (j, v) = (s.col_idx[nz] as usize, s.vals[nz]);
                    let brow = &bd[j * n + jc..][..nc];
                    // SAFETY: as above.
                    unsafe {
                        let w = _mm256_set1_ps(v);
                        let mut idx = 0usize;
                        while idx + 8 <= nc {
                            let cp = crow.as_mut_ptr().add(idx);
                            let acc = _mm256_fmadd_ps(
                                w,
                                _mm256_loadu_ps(brow.as_ptr().add(idx)),
                                _mm256_loadu_ps(cp),
                            );
                            _mm256_storeu_ps(cp, acc);
                            idx += 8;
                        }
                        while idx < nc {
                            crow[idx] = v.mul_add(brow[idx], crow[idx]);
                            idx += 1;
                        }
                    }
                    nz += 1;
                }
            }
            jc += nc;
        }
    }
}

/// `C += Sᵀ · B` where `S` is `[k×m]` CSR and `B` is `[k×n]`.
///
/// The sparse analogue of [`crate::matmul_tn_into`]: for every stored
/// `(p, i, v)` the kernel scatters `v · B[p, :]` into `C[i, :]`.
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
pub fn spmm_tn_into(s: CsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_spmm_tn(&s, b, c);
    spmm_tn_rows(s, b.data(), n, 0..s.cols, c.data_mut());
}

/// [`spmm_tn_into`] with the output rows fanned out over `rt`'s workers.
/// Each worker scans the full CSR structure but scatters only into its own
/// output-row range, preserving the sequential per-element accumulation
/// order — bit-identical for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`spmm_tn_into`].
pub fn spmm_tn_into_rt(rt: &Runtime, s: CsrView<'_>, b: &Tensor, c: &mut Tensor) {
    let n = check_spmm_tn(&s, b, c);
    // Every worker rescans the full index structure and keeps only its own
    // output rows, so the fan-out costs ~threads × the index traffic; it
    // only pays off when the per-entry useful work (`n` columns) clearly
    // outweighs that rescan — for narrow `B` stay sequential.
    if !rt.should_parallelize(s.nnz().saturating_mul(n)) || s.cols <= 1 || n < 2 * rt.threads() {
        return spmm_tn_rows(s, b.data(), n, 0..s.cols, c.data_mut());
    }
    let bd = b.data();
    let jobs = rt.split_rows_mut(c.data_mut(), n.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        spmm_tn_rows(s, bd, n, rows, cchunk);
    });
}

fn check_spmm_tn(s: &CsrView<'_>, b: &Tensor, c: &Tensor) -> usize {
    s.validate();
    let (k, n) = dims2(b, "B");
    assert_eq!(k, s.rows, "spmm_tn inner dims differ: {} vs {k}", s.rows);
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (s.cols, n), "spmm_tn output shape mismatch");
    n
}

/// `C += Sᵀ · B` restricted to the output-row range `rows`: scans every
/// stored entry in sequential order, scattering only those whose column
/// index lands in `rows`.
fn spmm_tn_rows(s: CsrView<'_>, bd: &[f32], n: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    for p in 0..s.rows {
        let brow = &bd[p * n..(p + 1) * n];
        for nz in s.row_ptr[p]..s.row_ptr[p + 1] {
            let (i, v) = (s.col_idx[nz] as usize, s.vals[nz]);
            if !rows.contains(&i) {
                continue;
            }
            let local = i - rows.start;
            let crow = &mut cchunk[local * n..(local + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += v * bv;
            }
        }
    }
}

/// `C += A[m×k] · S` where `S` is `[k×n]` CSR.
///
/// Used for linear input gradients (`dX = dY · W`): each scalar `A[i, p]`
/// scatters `A[i, p] · S[p, :]` along the sparse row.
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
pub fn dsmm_into(a: &Tensor, s: CsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_dsmm(a, &s, c);
    dsmm_rows(a.data(), s, k, 0..m, c.data_mut());
}

/// [`dsmm_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`dsmm_into`].
pub fn dsmm_into_rt(rt: &Runtime, a: &Tensor, s: CsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_dsmm(a, &s, c);
    if !rt.should_parallelize(m.saturating_mul(s.nnz())) || m <= 1 {
        return dsmm_rows(a.data(), s, k, 0..m, c.data_mut());
    }
    let ad = a.data();
    let jobs = rt.split_rows_mut(c.data_mut(), s.cols.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        dsmm_rows(ad, s, k, rows, cchunk);
    });
}

fn check_dsmm(a: &Tensor, s: &CsrView<'_>, c: &Tensor) -> (usize, usize) {
    s.validate();
    let (m, k) = dims2(a, "A");
    assert_eq!(k, s.rows, "dsmm inner dims differ: {k} vs {}", s.rows);
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, s.cols), "dsmm output shape mismatch");
    (m, k)
}

/// `C += A · S` restricted to the output-row range `rows`.
fn dsmm_rows(ad: &[f32], s: CsrView<'_>, k: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    for (local, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cchunk[local * s.cols..(local + 1) * s.cols];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for nz in s.row_ptr[p]..s.row_ptr[p + 1] {
                crow[s.col_idx[nz] as usize] += av * s.vals[nz];
            }
        }
    }
}

/// `C += A[m×k] · Sᵀ` where `S` is `[n×k]` CSR.
///
/// Used for linear forward passes (`Y = X · Wᵀ`): `C[i, r]` accumulates the
/// dot product of `A[i, :]` with sparse row `r`, gathering from the dense
/// row.
///
/// # Panics
///
/// Panics if shapes are incompatible or the view is malformed.
pub fn dsmm_nt_into(a: &Tensor, s: CsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_dsmm_nt(a, &s, c);
    dsmm_nt_rows(a.data(), s, k, 0..m, c.data_mut());
}

/// [`dsmm_nt_into`] with the output rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`dsmm_nt_into`].
pub fn dsmm_nt_into_rt(rt: &Runtime, a: &Tensor, s: CsrView<'_>, c: &mut Tensor) {
    let (m, k) = check_dsmm_nt(a, &s, c);
    if !rt.should_parallelize(m.saturating_mul(s.nnz())) || m <= 1 {
        return dsmm_nt_rows(a.data(), s, k, 0..m, c.data_mut());
    }
    let ad = a.data();
    let jobs = rt.split_rows_mut(c.data_mut(), s.rows.max(1));
    rt.scatter(jobs, |(rows, cchunk)| {
        dsmm_nt_rows(ad, s, k, rows, cchunk);
    });
}

fn check_dsmm_nt(a: &Tensor, s: &CsrView<'_>, c: &Tensor) -> (usize, usize) {
    s.validate();
    let (m, k) = dims2(a, "A");
    assert_eq!(k, s.cols, "dsmm_nt inner dims differ: {k} vs {}", s.cols);
    let (cm, cn) = dims2(c, "C");
    assert_eq!((cm, cn), (m, s.rows), "dsmm_nt output shape mismatch");
    (m, k)
}

/// `C += A · Sᵀ` restricted to the output-row range `rows`.
fn dsmm_nt_rows(ad: &[f32], s: CsrView<'_>, k: usize, rows: Range<usize>, cchunk: &mut [f32]) {
    for (local, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cchunk[local * s.rows..(local + 1) * s.rows];
        for (r, cv) in crow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for nz in s.row_ptr[r]..s.row_ptr[r + 1] {
                acc += s.vals[nz] * arow[s.col_idx[nz] as usize];
            }
            *cv += acc;
        }
    }
}

/// Sampled dense–dense product, NT layout: for each stored coordinate
/// `(r, j)` of the structure `s`, accumulates `A[r, :] · B[j, :]` into
/// `vals[nz]`.
///
/// This computes `(A · Bᵀ) ⊙ structure(S)` without materializing the dense
/// product — exactly the masked weight gradient `dW = dY · colᵀ` restricted
/// to mask-alive coordinates. `s.vals` is ignored (structure only).
///
/// # Panics
///
/// Panics if shapes are incompatible, the view is malformed, or `vals` does
/// not have one slot per stored entry.
pub fn sddmm_nt_into(s: CsrView<'_>, a: &Tensor, b: &Tensor, vals: &mut [f32]) {
    let c = check_sddmm_nt(&s, a, b, vals);
    sddmm_nt_rows(s, a.data(), b.data(), c, 0..s.rows, vals);
}

/// [`sddmm_nt_into`] with the CSR rows fanned out over `rt`'s workers (the
/// `vals` buffer is split at `row_ptr` boundaries). Bit-identical to the
/// sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`sddmm_nt_into`].
pub fn sddmm_nt_into_rt(rt: &Runtime, s: CsrView<'_>, a: &Tensor, b: &Tensor, vals: &mut [f32]) {
    let c = check_sddmm_nt(&s, a, b, vals);
    if !rt.should_parallelize(s.nnz().saturating_mul(c)) || s.rows <= 1 {
        return sddmm_nt_rows(s, a.data(), b.data(), c, 0..s.rows, vals);
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_at_offsets_mut(vals, s.rows, |r| s.row_ptr[r]);
    rt.scatter(jobs, |(rows, chunk)| {
        sddmm_nt_rows(s, ad, bd, c, rows, chunk);
    });
}

/// Segmented [`sddmm_nt_into`]: the dot product for every stored coordinate
/// is evaluated one `seg`-wide column segment at a time (fresh accumulator
/// per segment, `vals[nz] += acc` after each), ascending. Bit-identical to
/// calling [`sddmm_nt_into`] once per materialized segment pair — the
/// batched form of the per-sample masked weight-gradient loop (`seg` = one
/// sample's columns).
///
/// # Panics
///
/// Panics on the same shape mismatches as [`sddmm_nt_into`], or when `seg`
/// is zero or does not divide the inner dimension.
pub fn sddmm_nt_seg_into(s: CsrView<'_>, a: &Tensor, b: &Tensor, seg: usize, vals: &mut [f32]) {
    let c = check_sddmm_nt(&s, a, b, vals);
    assert!(
        seg > 0 && c.is_multiple_of(seg),
        "sddmm_nt_seg: segment {seg} must divide c={c}"
    );
    sddmm_nt_seg_rows(s, a.data(), b.data(), c, seg, 0..s.rows, vals);
}

/// [`sddmm_nt_seg_into`] with the CSR rows fanned out over `rt`'s workers.
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`sddmm_nt_seg_into`].
pub fn sddmm_nt_seg_into_rt(
    rt: &Runtime,
    s: CsrView<'_>,
    a: &Tensor,
    b: &Tensor,
    seg: usize,
    vals: &mut [f32],
) {
    let c = check_sddmm_nt(&s, a, b, vals);
    assert!(
        seg > 0 && c.is_multiple_of(seg),
        "sddmm_nt_seg: segment {seg} must divide c={c}"
    );
    if !rt.should_parallelize(s.nnz().saturating_mul(c)) || s.rows <= 1 {
        return sddmm_nt_seg_rows(s, a.data(), b.data(), c, seg, 0..s.rows, vals);
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_at_offsets_mut(vals, s.rows, |r| s.row_ptr[r]);
    rt.scatter(jobs, |(rows, chunk)| {
        sddmm_nt_seg_rows(s, ad, bd, c, seg, rows, chunk);
    });
}

/// Segmented sampled NT product over the CSR-row range `rows`: per stored
/// entry, one fresh-accumulator dot per `seg`-wide segment, ascending —
/// exactly the op sequence of per-segment [`sddmm_nt_rows`] calls.
fn sddmm_nt_seg_rows(
    s: CsrView<'_>,
    ad: &[f32],
    bd: &[f32],
    c: usize,
    seg: usize,
    rows: Range<usize>,
    vals_chunk: &mut [f32],
) {
    let base = s.row_ptr[rows.start];
    for r in rows {
        let arow = &ad[r * c..(r + 1) * c];
        let range = s.row_ptr[r]..s.row_ptr[r + 1];
        let local = range.start - base..range.end - base;
        for (&j, val) in s.col_idx[range].iter().zip(&mut vals_chunk[local]) {
            let brow = &bd[j as usize * c..(j as usize + 1) * c];
            let mut off = 0usize;
            while off < c {
                let mut acc = 0.0f32;
                for (&av, &bv) in arow[off..off + seg].iter().zip(brow[off..off + seg].iter()) {
                    acc += av * bv;
                }
                *val += acc;
                off += seg;
            }
        }
    }
}

fn check_sddmm_nt(s: &CsrView<'_>, a: &Tensor, b: &Tensor, vals: &[f32]) -> usize {
    s.validate();
    let (m, c) = dims2(a, "A");
    let (k, c2) = dims2(b, "B");
    assert_eq!(c, c2, "sddmm_nt inner dims differ: {c} vs {c2}");
    assert_eq!(m, s.rows, "sddmm_nt row count mismatch");
    assert_eq!(k, s.cols, "sddmm_nt col count mismatch");
    assert_eq!(vals.len(), s.nnz(), "sddmm_nt output slot count mismatch");
    c
}

/// Sampled NT product over the CSR-row range `rows`; `vals_chunk` holds
/// exactly the stored entries of those rows.
fn sddmm_nt_rows(
    s: CsrView<'_>,
    ad: &[f32],
    bd: &[f32],
    c: usize,
    rows: Range<usize>,
    vals_chunk: &mut [f32],
) {
    let base = s.row_ptr[rows.start];
    for r in rows {
        let arow = &ad[r * c..(r + 1) * c];
        let range = s.row_ptr[r]..s.row_ptr[r + 1];
        let local = range.start - base..range.end - base;
        for (&j, val) in s.col_idx[range].iter().zip(&mut vals_chunk[local]) {
            let brow = &bd[j as usize * c..(j as usize + 1) * c];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *val += acc;
        }
    }
}

/// Sampled dense–dense product, TN layout: for each stored coordinate
/// `(r, j)` of the structure `s`, accumulates `Σₙ A[n, r] · B[n, j]` into
/// `vals[nz]`.
///
/// This computes `(Aᵀ · B) ⊙ structure(S)` — the masked linear weight
/// gradient `dW = dYᵀ · X` restricted to mask-alive coordinates. `s.vals`
/// is ignored (structure only).
///
/// # Panics
///
/// Panics if shapes are incompatible, the view is malformed, or `vals` does
/// not have one slot per stored entry.
pub fn sddmm_tn_into(s: CsrView<'_>, a: &Tensor, b: &Tensor, vals: &mut [f32]) {
    let (n1, r, k) = check_sddmm_tn(&s, a, b, vals);
    sddmm_tn_rows(s, a.data(), b.data(), n1, r, k, 0..s.rows, vals);
}

/// [`sddmm_tn_into`] with the CSR rows fanned out over `rt`'s workers (the
/// `vals` buffer is split at `row_ptr` boundaries; every worker keeps the
/// batch-outer loop, so per-slot accumulation order is unchanged).
/// Bit-identical to the sequential kernel for any thread count.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`sddmm_tn_into`].
pub fn sddmm_tn_into_rt(rt: &Runtime, s: CsrView<'_>, a: &Tensor, b: &Tensor, vals: &mut [f32]) {
    let (n1, r, k) = check_sddmm_tn(&s, a, b, vals);
    if !rt.should_parallelize(n1.saturating_mul(s.nnz())) || s.rows <= 1 {
        return sddmm_tn_rows(s, a.data(), b.data(), n1, r, k, 0..s.rows, vals);
    }
    let (ad, bd) = (a.data(), b.data());
    let jobs = rt.split_at_offsets_mut(vals, s.rows, |row| s.row_ptr[row]);
    rt.scatter(jobs, |(rows, chunk)| {
        sddmm_tn_rows(s, ad, bd, n1, r, k, rows, chunk);
    });
}

fn check_sddmm_tn(s: &CsrView<'_>, a: &Tensor, b: &Tensor, vals: &[f32]) -> (usize, usize, usize) {
    s.validate();
    let (n1, r) = dims2(a, "A");
    let (n2, k) = dims2(b, "B");
    assert_eq!(n1, n2, "sddmm_tn batch dims differ: {n1} vs {n2}");
    assert_eq!(r, s.rows, "sddmm_tn row count mismatch");
    assert_eq!(k, s.cols, "sddmm_tn col count mismatch");
    assert_eq!(vals.len(), s.nnz(), "sddmm_tn output slot count mismatch");
    (n1, r, k)
}

/// Sampled TN product over the CSR-row range `rows`; `vals_chunk` holds
/// exactly the stored entries of those rows. The batch loop stays outermost
/// so every slot accumulates samples in ascending order, exactly like the
/// sequential kernel.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural operands
fn sddmm_tn_rows(
    s: CsrView<'_>,
    ad: &[f32],
    bd: &[f32],
    n1: usize,
    r: usize,
    k: usize,
    rows: Range<usize>,
    vals_chunk: &mut [f32],
) {
    let base = s.row_ptr[rows.start];
    // Batch-outer loop streams both dense operands once per sample.
    for n in 0..n1 {
        let arow = &ad[n * r..(n + 1) * r];
        let brow = &bd[n * k..(n + 1) * k];
        for row in rows.clone() {
            let av = arow[row];
            if av == 0.0 {
                continue;
            }
            let range = s.row_ptr[row]..s.row_ptr[row + 1];
            let local = range.start - base..range.end - base;
            for (&j, val) in s.col_idx[range].iter().zip(&mut vals_chunk[local]) {
                *val += av * brow[j as usize];
            }
        }
    }
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, matmul_into, matmul_nt_into, matmul_tn_into};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// An owned CSR fixture plus its dense equivalent.
    struct Fixture {
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f32>,
        dense: Tensor,
    }

    impl Fixture {
        fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut vals = Vec::new();
            let mut dense = Tensor::zeros(&[rows, cols]);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.gen_range(0.0f64..1.0) < density {
                        let v = rng.gen_range(-1.0f32..1.0);
                        col_idx.push(c as u32);
                        vals.push(v);
                        dense.data_mut()[r * cols + c] = v;
                    }
                }
                row_ptr.push(vals.len());
            }
            Fixture {
                rows,
                cols,
                row_ptr,
                col_idx,
                vals,
                dense,
            }
        }

        fn view(&self) -> CsrView<'_> {
            CsrView {
                rows: self.rows,
                cols: self.cols,
                row_ptr: &self.row_ptr,
                col_idx: &self.col_idx,
                vals: &self.vals,
            }
        }
    }

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
    }

    #[test]
    fn spmm_matches_dense() {
        for (seed, density) in [(1u64, 0.1), (2, 0.5), (3, 1.0), (4, 0.0)] {
            let f = Fixture::random(7, 5, density, seed);
            let b = rand_t(&[5, 9], seed + 100);
            let mut sparse = Tensor::ones(&[7, 9]);
            let mut dense = Tensor::ones(&[7, 9]);
            spmm_into(f.view(), &b, &mut sparse);
            matmul_into(&f.dense, &b, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-5);
        }
    }

    /// The column-blocked, quad-unrolled spmm path (wide `B` crossing the
    /// `SPMM_NC` slice boundary, rows with ≥ 4 stored entries plus a tail)
    /// agrees with the dense GEMM and is bit-identical across thread counts.
    #[test]
    fn spmm_blocked_wide_matches_dense() {
        let f = Fixture::random(13, 40, 0.35, 77);
        let n = SPMM_NC + 17; // forces a second, partial column slice
        let b = rand_t(&[40, n], 78);
        let mut sparse = Tensor::zeros(&[13, n]);
        let mut dense = Tensor::zeros(&[13, n]);
        spmm_into(f.view(), &b, &mut sparse);
        matmul_into(&f.dense, &b, &mut dense);
        assert_close(sparse.data(), dense.data(), 1e-4);
        for threads in [2usize, 3, 64] {
            let rt = Runtime::exact(threads).with_min_work(0);
            let mut par = Tensor::zeros(&[13, n]);
            spmm_into_rt(&rt, f.view(), &b, &mut par);
            assert_eq!(sparse.data(), par.data(), "threads={threads}");
        }
    }

    #[test]
    fn spmm_tn_matches_dense() {
        for seed in 1..5u64 {
            let f = Fixture::random(6, 4, 0.4, seed);
            let b = rand_t(&[6, 8], seed + 200);
            let mut sparse = Tensor::zeros(&[4, 8]);
            let mut dense = Tensor::zeros(&[4, 8]);
            spmm_tn_into(f.view(), &b, &mut sparse);
            matmul_tn_into(&f.dense, &b, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-5);
        }
    }

    #[test]
    fn dsmm_matches_dense() {
        for seed in 1..5u64 {
            let f = Fixture::random(5, 7, 0.3, seed);
            let a = rand_t(&[3, 5], seed + 300);
            let mut sparse = Tensor::zeros(&[3, 7]);
            let mut dense = Tensor::zeros(&[3, 7]);
            dsmm_into(&a, f.view(), &mut sparse);
            matmul_into(&a, &f.dense, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-5);
        }
    }

    #[test]
    fn dsmm_nt_matches_dense() {
        for seed in 1..5u64 {
            let f = Fixture::random(6, 5, 0.3, seed);
            let a = rand_t(&[4, 5], seed + 400);
            let mut sparse = Tensor::zeros(&[4, 6]);
            let mut dense = Tensor::zeros(&[4, 6]);
            dsmm_nt_into(&a, f.view(), &mut sparse);
            matmul_nt_into(&a, &f.dense, &mut dense);
            assert_close(sparse.data(), dense.data(), 1e-5);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // nz indexes three parallel arrays
    fn sddmm_nt_matches_masked_dense() {
        for seed in 1..5u64 {
            let f = Fixture::random(5, 6, 0.4, seed);
            let a = rand_t(&[5, 7], seed + 500);
            let b = rand_t(&[6, 7], seed + 600);
            let mut vals = vec![0.0f32; f.vals.len()];
            sddmm_nt_into(f.view(), &a, &b, &mut vals);
            let mut dense = Tensor::zeros(&[5, 6]);
            matmul_nt_into(&a, &b, &mut dense);
            for r in 0..5 {
                for nz in f.row_ptr[r]..f.row_ptr[r + 1] {
                    let j = f.col_idx[nz] as usize;
                    assert!(
                        (vals[nz] - dense.at2(r, j)).abs() < 1e-4,
                        "({r},{j}): {} vs {}",
                        vals[nz],
                        dense.at2(r, j)
                    );
                }
            }
        }
    }

    /// The segmented SDDMM must be *bit-identical* to one [`sddmm_nt_into`]
    /// call per materialized segment pair — the contract that lets the
    /// batched masked weight-gradient path replace the per-sample loop.
    #[test]
    fn sddmm_nt_seg_matches_per_segment_calls_exactly() {
        for (seed, seg, segs) in [(1u64, 3usize, 4usize), (2, 7, 1), (3, 5, 7)] {
            let c = seg * segs;
            let f = Fixture::random(6, 5, 0.5, seed);
            let a = rand_t(&[6, c], seed + 700);
            let b = rand_t(&[5, c], seed + 800);

            let mut expect = vec![0.5f32; f.vals.len()];
            for s in 0..segs {
                let slice = |t: &Tensor, rows: usize| {
                    let mut out = vec![0.0f32; rows * seg];
                    for r in 0..rows {
                        out[r * seg..(r + 1) * seg]
                            .copy_from_slice(&t.data()[r * c + s * seg..][..seg]);
                    }
                    Tensor::from_vec(out, &[rows, seg])
                };
                sddmm_nt_into(f.view(), &slice(&a, 6), &slice(&b, 5), &mut expect);
            }

            let mut vals = vec![0.5f32; f.vals.len()];
            sddmm_nt_seg_into(f.view(), &a, &b, seg, &mut vals);
            assert_eq!(vals, expect, "seq seed={seed} seg={seg}");

            for threads in [1usize, 2, 4, 64] {
                let rt = Runtime::exact(threads).with_min_work(0);
                let mut par = vec![0.5f32; f.vals.len()];
                sddmm_nt_seg_into_rt(&rt, f.view(), &a, &b, seg, &mut par);
                assert_eq!(par, expect, "threads={threads} seed={seed}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // nz indexes three parallel arrays
    fn sddmm_tn_matches_masked_dense() {
        for seed in 1..5u64 {
            let f = Fixture::random(4, 6, 0.4, seed);
            let a = rand_t(&[8, 4], seed + 700);
            let b = rand_t(&[8, 6], seed + 800);
            let mut vals = vec![0.0f32; f.vals.len()];
            sddmm_tn_into(f.view(), &a, &b, &mut vals);
            let mut dense = Tensor::zeros(&[4, 6]);
            matmul_tn_into(&a, &b, &mut dense);
            for r in 0..4 {
                for nz in f.row_ptr[r]..f.row_ptr[r + 1] {
                    let j = f.col_idx[nz] as usize;
                    assert!(
                        (vals[nz] - dense.at2(r, j)).abs() < 1e-4,
                        "({r},{j}): {} vs {}",
                        vals[nz],
                        dense.at2(r, j)
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_accumulate() {
        let f = Fixture::random(3, 3, 0.5, 9);
        let b = Tensor::eye(3);
        let mut c = Tensor::ones(&[3, 3]);
        spmm_into(f.view(), &b, &mut c);
        let expect = f.dense.add(&Tensor::ones(&[3, 3]));
        assert_close(c.data(), expect.data(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn spmm_rejects_bad_shapes() {
        let f = Fixture::random(3, 4, 0.5, 10);
        let b = Tensor::zeros(&[3, 2]);
        let mut c = Tensor::zeros(&[3, 2]);
        spmm_into(f.view(), &b, &mut c);
    }

    /// Every sparse `_rt` kernel is bit-identical to its sequential twin for
    /// every thread count, across densities including nnz = 0.
    #[test]
    fn rt_variants_are_bit_identical() {
        for (seed, density) in [(1u64, 0.0), (2, 0.05), (3, 0.4), (4, 1.0)] {
            let f = Fixture::random(9, 7, density, seed);
            let b_k = rand_t(&[7, 5], seed + 10); // for spmm: S[9x7] · B[7x5]
            let b_r = rand_t(&[9, 5], seed + 11); // for spmm_tn: Sᵀ[7x9]ᵀ · B[9x5]
            let a_m = rand_t(&[4, 9], seed + 12); // for dsmm: A[4x9] · S[9x7]
            let a_nt = rand_t(&[4, 7], seed + 13); // for dsmm_nt: A[4x7] · Sᵀ
            let sd_a = rand_t(&[9, 6], seed + 14); // sddmm_nt: A[9x6], B[7x6]
            let sd_b = rand_t(&[7, 6], seed + 15);
            let tn_a = rand_t(&[8, 9], seed + 16); // sddmm_tn: A[8x9], B[8x7]
            let tn_b = rand_t(&[8, 7], seed + 17);
            for threads in [1usize, 2, 3, 64] {
                let rt = Runtime::exact(threads).with_min_work(0);
                let tag = format!("d={density} t={threads}");

                let mut seq = Tensor::ones(&[9, 5]);
                let mut par = Tensor::ones(&[9, 5]);
                spmm_into(f.view(), &b_k, &mut seq);
                spmm_into_rt(&rt, f.view(), &b_k, &mut par);
                assert_eq!(seq.data(), par.data(), "spmm {tag}");

                let mut seq = Tensor::ones(&[7, 5]);
                let mut par = Tensor::ones(&[7, 5]);
                spmm_tn_into(f.view(), &b_r, &mut seq);
                spmm_tn_into_rt(&rt, f.view(), &b_r, &mut par);
                assert_eq!(seq.data(), par.data(), "spmm_tn {tag}");

                let mut seq = Tensor::ones(&[4, 7]);
                let mut par = Tensor::ones(&[4, 7]);
                dsmm_into(&a_m, f.view(), &mut seq);
                dsmm_into_rt(&rt, &a_m, f.view(), &mut par);
                assert_eq!(seq.data(), par.data(), "dsmm {tag}");

                let mut seq = Tensor::ones(&[4, 9]);
                let mut par = Tensor::ones(&[4, 9]);
                dsmm_nt_into(&a_nt, f.view(), &mut seq);
                dsmm_nt_into_rt(&rt, &a_nt, f.view(), &mut par);
                assert_eq!(seq.data(), par.data(), "dsmm_nt {tag}");

                let mut seq = vec![0.5f32; f.vals.len()];
                let mut par = vec![0.5f32; f.vals.len()];
                sddmm_nt_into(f.view(), &sd_a, &sd_b, &mut seq);
                sddmm_nt_into_rt(&rt, f.view(), &sd_a, &sd_b, &mut par);
                assert_eq!(seq, par, "sddmm_nt {tag}");

                let mut seq = vec![0.5f32; f.vals.len()];
                let mut par = vec![0.5f32; f.vals.len()];
                sddmm_tn_into(f.view(), &tn_a, &tn_b, &mut seq);
                sddmm_tn_into_rt(&rt, f.view(), &tn_a, &tn_b, &mut par);
                assert_eq!(seq, par, "sddmm_tn {tag}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row_ptr")]
    fn validate_rejects_malformed_view() {
        let v = CsrView {
            rows: 2,
            cols: 2,
            row_ptr: &[0, 1],
            col_idx: &[0],
            vals: &[1.0],
        };
        v.validate();
    }
}
