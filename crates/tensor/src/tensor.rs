//! The core dense tensor type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` tensor of arbitrary rank.
///
/// The tensor owns its storage. Cloning copies the buffer; the FedTiny
/// simulator relies on cheap-to-reason-about value semantics rather than
/// shared views.
///
/// # Examples
///
/// ```
/// use ft_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.data.len() <= 16 {
            write!(f, "Tensor{:?} {:?}", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor{:?} [{} elems, first={:?}...]",
                self.shape,
                self.data.len(),
                &self.data[..4]
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ft_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert_eq!(t.data(), &[0.0; 4]);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape covering the same number of elements.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} ({} elems) into {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            n
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Reshapes in place (no copy; reuses the shape buffer, so a
    /// steady-state reshape performs no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape element count mismatch");
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Resizes to `shape` with every element zeroed, reusing the existing
    /// buffers: once a tensor has seen its largest geometry, repeated calls
    /// allocate nothing. This is the arena-reset primitive behind the
    /// training-engine scratch buffers.
    pub fn resize_zeroed(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Resizes to `shape` like [`Tensor::resize_zeroed`] but skips the
    /// zero-fill when the element count is unchanged, leaving the previous
    /// contents in place. For buffers the caller fully overwrites before
    /// reading (batch assembly, normalized activations, repack staging)
    /// this removes a whole memset pass per call; buffers that are
    /// *accumulated* into must keep using [`Tensor::resize_zeroed`].
    pub fn resize_for_overwrite(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        if n != self.data.len() {
            self.data.clear();
            self.data.resize(n, 0.0);
        }
    }

    /// Makes `self` an exact copy of `src` (shape and data), reusing the
    /// existing buffers when capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Element at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the index is out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(
            i < r && j < c,
            "index ({i},{j}) out of bounds for {:?}",
            self.shape
        );
        self.data[i * c + j]
    }

    /// Element at a 4-D index (`[n, c, h, w]` convention).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or the index is out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        assert_eq!(self.shape.len(), 4, "at4 requires a rank-4 tensor");
        let (sn, sc, sh, sw) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        assert!(n < sn && c < sc && h < sh && w < sw, "index out of bounds");
        self.data[((n * sc + c) * sh + h) * sw + w]
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transposed requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filled_and_ones() {
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0, 1.0, 1.0]);
        assert_eq!(Tensor::filled(&[2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        assert_eq!(i.at2(2, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshaped(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_count_mismatch() {
        let t = Tensor::zeros(&[4]);
        let _ = t.reshaped(&[3]);
    }

    #[test]
    fn at2_and_at4_indexing() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 5.0);
        let t4 = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[2, 2, 2, 2]);
        assert_eq!(t4.at4(1, 0, 1, 1), 11.0);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transposed();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), 6.0);
        assert_eq!(tt.at2(0, 0), 1.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Tensor::zeros(&[1]));
        assert!(!s.is_empty());
        let s = format!("{:?}", Tensor::zeros(&[100]));
        assert!(s.contains("100 elems"));
    }
}
