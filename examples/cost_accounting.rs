//! Cost accounting: reproduce Table I's analytic cost columns — training
//! FLOPs, device memory, and model-transfer bytes — for ResNet18 at the
//! paper's densities, without running any training.
//!
//! ```bash
//! cargo run --release --example cost_accounting
//! ```

use fedtiny_suite::fl::ModelSpec;
use fedtiny_suite::metrics::{
    device_memory_bytes, forward_flops_dense, prunable_lens, sparse_model_bytes, total_params,
    training_flops, ExtraMemory,
};

fn main() {
    // The paper-scale model: width 1.0 at 32x32 — ~11.2M parameters.
    let model = ModelSpec::ResNet18 {
        width: 1.0,
        input: 32,
    }
    .build(3, 10, 0);
    let arch = model.arch();
    let layers = prunable_lens(&arch).len();
    println!(
        "ResNet18 (paper scale): {} parameters, {} prunable layers, {:.2e} dense forward FLOPs/sample\n",
        total_params(&arch),
        layers,
        forward_flops_dense(&arch)
    );

    let dense_train = 3.0 * forward_flops_dense(&arch);
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}  {:>14}",
        "density", "train_flops", "factor", "memory", "transfer"
    );
    for d in [1.0f32, 0.01, 0.005, 0.001] {
        let densities = vec![d; layers];
        let train = training_flops(&arch, &densities);
        let mem = device_memory_bytes(&arch, &densities, ExtraMemory::None);
        let xfer = sparse_model_bytes(&arch, &densities);
        println!(
            "{d:>8}  {train:>12.2e}  {:>9.3}x  {:>10.2}MB  {:>12.2}MB",
            train / dense_train,
            mem / 1e6,
            xfer / 1e6
        );
    }

    println!("\nMethod-specific memory surcharges at d = 0.01:");
    let densities = vec![0.01f32; layers];
    for (label, extra) in [
        (
            "sparse model only (SNIP/SynFlow/FL-PQSU)",
            ExtraMemory::None,
        ),
        (
            "FedTiny (+O(a) top-k buffer, a = 4096)",
            ExtraMemory::TopKBuffer(4096),
        ),
        ("FedDST (+mask bits)", ExtraMemory::MaskBits),
        (
            "PruneFL (+dense importance scores)",
            ExtraMemory::DenseScores,
        ),
        ("LotteryFL (dense training)", ExtraMemory::DenseTraining),
    ] {
        println!(
            "  {:<45} {:>10.2} MB",
            label,
            device_memory_bytes(&arch, &densities, extra) / 1e6
        );
    }
    println!(
        "\ncompare with Table I: FedTiny 2.79MB / PruneFL 46.58MB / LotteryFL 90.91MB at d=0.01."
    );
}
