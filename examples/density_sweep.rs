//! Density sweep: FedTiny versus two representative baselines across
//! sparsity levels — a miniature of the paper's Fig. 3.
//!
//! ```bash
//! cargo run --release --example density_sweep
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{run_fedtiny, FedTinyConfig, ProgressiveConfig, SelectionMode};
use fedtiny_suite::fl::{ExperimentEnv, FlConfig, ModelSpec};
use fedtiny_suite::pruning::{run_baseline, BaselineMethod};
use fedtiny_suite::sparse::PruneSchedule;

fn main() {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 16,
        test_per_class: 10,
        resolution: 8,
        channels: 3,
        seed: 7,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = 4;
    cfg.rounds = 24;
    cfg.local_epochs = 1;
    cfg.sgd.lr = 0.05;
    cfg.seed = 7;
    let env = ExperimentEnv::new(synth, cfg);
    let spec = ModelSpec::ResNet18 {
        width: 0.125,
        input: 8,
    };

    println!(
        "{:>8}  {:>8}  {:>8}  {:>8}",
        "density", "synflow", "feddst", "fedtiny"
    );
    for d in [0.5f32, 0.2, 0.05, 0.02] {
        let synflow = run_baseline(&env, &spec, BaselineMethod::SynFlow, d, 0);
        let feddst = run_baseline(&env, &spec, BaselineMethod::FedDst, d, 0);
        let ft_cfg = FedTinyConfig {
            model: spec,
            d_target: d,
            pool_size: 6,
            noise_spread: 0.5,
            selection: SelectionMode::AdaptiveBn,
            progressive: Some(ProgressiveConfig {
                schedule: PruneSchedule::scaled_for(env.cfg.rounds, env.cfg.local_epochs),
                granularity: fedtiny_suite::fedtiny::Granularity::Block,
                backward_order: true,
                start_round: 2,
            }),
            codec: fedtiny_suite::fl::Codec::MaskCsr,
            eval_every: 0,
        };
        let fedtiny = run_fedtiny(&env, &ft_cfg);
        println!(
            "{d:>8}  {:>8.4}  {:>8.4}  {:>8.4}",
            synflow.accuracy, feddst.accuracy, fedtiny.accuracy
        );
    }
    println!(
        "\nexpected shape: the gap between FedTiny and the baselines widens as density falls."
    );
}
