//! Non-iid BN selection: shows *why* adaptive batch-normalization selection
//! matters — as the Dirichlet α shrinks (more heterogeneous devices), the
//! candidate chosen with recalibrated BN statistics diverges from the one
//! vanilla scoring would pick, and the resulting model is better.
//!
//! ```bash
//! cargo run --release --example noniid_bn_selection
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{
    adaptive_bn_selection, generate_candidate_pool, run_fedtiny, vanilla_selection, FedTinyConfig,
    ProgressiveConfig, SelectionConfig, SelectionMode,
};
use fedtiny_suite::fl::{ExperimentEnv, FlConfig, ModelSpec};
use fedtiny_suite::sparse::PruneSchedule;

fn main() {
    let spec = ModelSpec::ResNet18 {
        width: 0.125,
        input: 8,
    };
    println!(
        "{:>6}  {:>12}  {:>12}  {:>10}  {:>10}",
        "alpha", "adaptive_idx", "vanilla_idx", "acc_adapt", "acc_vanilla"
    );
    for alpha in [0.1f64, 0.5, 5.0] {
        let synth = SynthConfig {
            profile: DatasetProfile::Cifar10,
            train_per_class: 16,
            test_per_class: 10,
            resolution: 8,
            channels: 3,
            seed: 13,
        };
        let mut cfg = FlConfig::bench_default();
        cfg.devices = 4;
        cfg.rounds = 24;
        cfg.local_epochs = 1;
        cfg.sgd.lr = 0.05;
        cfg.alpha = alpha;
        cfg.seed = 13;
        let env = ExperimentEnv::new(synth, cfg);

        // Which candidate does each selection variant pick?
        let model = env.build_model(&spec);
        let sel = SelectionConfig {
            d_target: 0.1,
            pool_size: 8,
            noise_spread: 0.5,
            seed: 13,
        };
        let pool = generate_candidate_pool(model.as_ref(), &sel);
        let adaptive = adaptive_bn_selection(model.as_ref(), &env, &pool);
        let vanilla = vanilla_selection(model.as_ref(), &env, &pool);

        // And how does each choice train out (selection-only arms)?
        let base = FedTinyConfig {
            model: spec,
            d_target: 0.1,
            pool_size: 8,
            noise_spread: 0.5,
            selection: SelectionMode::AdaptiveBn,
            progressive: Some(ProgressiveConfig {
                schedule: PruneSchedule::scaled_for(env.cfg.rounds, env.cfg.local_epochs),
                granularity: fedtiny_suite::fedtiny::Granularity::Block,
                backward_order: true,
                start_round: 2,
            }),
            codec: fedtiny_suite::fl::Codec::MaskCsr,
            eval_every: 0,
        };
        let acc_adapt = run_fedtiny(&env, &base).accuracy;
        let mut vcfg = base;
        vcfg.selection = SelectionMode::Vanilla;
        let acc_vanilla = run_fedtiny(&env, &vcfg).accuracy;

        println!(
            "{alpha:>6}  {:>12}  {:>12}  {:>10.4}  {:>10.4}",
            adaptive.selected, vanilla.selected, acc_adapt, acc_vanilla
        );
    }
    println!("\nexpected shape: at low alpha the two selections disagree more and the adaptive\nvariant trains to higher accuracy; at high alpha (near-iid) they converge.");
}
