//! Partial participation: run FedTiny with only half the devices active per
//! round (an extension beyond the paper, which always uses all K devices)
//! and compare against full participation.
//!
//! ```bash
//! cargo run --release --example partial_participation
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{run_fedtiny, FedTinyConfig, ProgressiveConfig};
use fedtiny_suite::fl::{ExperimentEnv, FlConfig, ModelSpec};
use fedtiny_suite::sparse::PruneSchedule;

fn run_with_participation(participation: f32) -> (f32, f32) {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 16,
        test_per_class: 10,
        resolution: 8,
        channels: 3,
        seed: 31,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = 6;
    cfg.rounds = 12;
    cfg.local_epochs = 1;
    cfg.participation = participation;
    cfg.seed = 31;
    let env = ExperimentEnv::new(synth, cfg);
    let ft = FedTinyConfig {
        model: ModelSpec::ResNet18 {
            width: 0.125,
            input: 8,
        },
        d_target: 0.1,
        pool_size: 4,
        noise_spread: 0.5,
        selection: fedtiny_suite::fedtiny::SelectionMode::AdaptiveBn,
        progressive: Some(ProgressiveConfig {
            schedule: PruneSchedule::scaled_for(env.cfg.rounds, env.cfg.local_epochs),
            granularity: fedtiny_suite::fedtiny::Granularity::Block,
            backward_order: true,
            start_round: 2,
        }),
        codec: fedtiny_suite::fl::Codec::MaskCsr,
        eval_every: 0,
    };
    let r = run_fedtiny(&env, &ft);
    (r.accuracy, r.final_density)
}

fn main() {
    println!("{:>14}  {:>8}  {:>8}", "participation", "top1", "density");
    for p in [1.0f32, 0.5, 0.34] {
        let (acc, density) = run_with_participation(p);
        println!("{p:>14}  {acc:>8.4}  {density:>8.4}");
    }
    println!(
        "\nexpected shape: accuracy degrades gracefully as fewer devices participate per\n\
         round — each round sees less data, but the BN-selected mask and progressive\n\
         adjustments still steer the subnetwork."
    );
}
