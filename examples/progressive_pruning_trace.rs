//! Progressive-pruning trace: watch Algorithm 2 reshape a mask round by
//! round — which block is adjusted, how many coordinates are grown/pruned
//! (the cosine schedule), and how far the mask drifts from the initial
//! coarse-pruned structure (per-layer densities stay fixed; the adjustment
//! relocates capacity *within* each layer).
//!
//! ```bash
//! cargo run --release --example progressive_pruning_trace
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{progressive::progressive_adjust, ProgressiveConfig};
use fedtiny_suite::fl::{ExperimentEnv, FlConfig, ModelSpec};
use fedtiny_suite::nn::{apply_mask, sparse_layout};
use fedtiny_suite::sparse::{magnitude_mask, uniform_density_vector, PruneSchedule};

fn main() {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 12,
        test_per_class: 6,
        resolution: 8,
        channels: 3,
        seed: 21,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = 3;
    cfg.seed = 21;
    let env = ExperimentEnv::new(synth, cfg);

    let spec = ModelSpec::Vgg11 {
        width: 0.125,
        input: 8,
    };
    let mut model = env.build_model(&spec);
    let layout = sparse_layout(model.as_ref());
    let weights: Vec<&[f32]> = model
        .params()
        .into_iter()
        .filter(|p| p.prunable)
        .map(|p| p.data.data())
        .collect();
    let mut mask = magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, 0.1));
    drop(weights);
    apply_mask(model.as_mut(), &mask);

    let pcfg = ProgressiveConfig {
        schedule: PruneSchedule {
            delta_r: 1,
            r_stop: 8,
            local_iters: 1,
        },
        granularity: fedtiny_suite::fedtiny::Granularity::Block,
        backward_order: true,
        start_round: 0,
    };
    let units = pcfg.units(model.as_ref(), mask.num_layers());
    println!(
        "VGG11: {} prunable layers in {} blocks (backward order: output-side first)\n",
        mask.num_layers(),
        units.len()
    );

    let initial = mask.clone();
    for round in 0..8 {
        let unit = &units[round % units.len()];
        let report = progressive_adjust(model.as_mut(), &mut mask, &env, &pcfg, unit, round);
        let adjusted: Vec<String> = report
            .adjusted
            .iter()
            .map(|(l, a)| format!("layer{l}:±{a}"))
            .collect();
        // How much of the initially-selected structure survives?
        let mut kept = 0usize;
        let mut init_alive = 0usize;
        for l in 0..mask.num_layers() {
            for (i, &was) in initial.layer(l).iter().enumerate() {
                if was {
                    init_alive += 1;
                    if mask.get(l, i) {
                        kept += 1;
                    }
                }
            }
        }
        println!(
            "round {round}: block {:?} adjusted [{}]; density {:.4}; {:.1}% of the initial mask survives",
            unit,
            adjusted.join(", "),
            mask.density(),
            100.0 * kept as f32 / init_alive as f32,
        );
    }
    println!("\nnote: overall and per-layer densities are invariant (Alg. 2 grows and prunes");
    println!("the same count per layer); the adjustment relocates capacity within layers,");
    println!("which is why the initial-mask survival fraction decays over the schedule.");
}
