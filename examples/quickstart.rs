//! Quickstart: run the full FedTiny pipeline on a synthetic federated
//! CIFAR-10 and print what each stage did.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{
    adaptive_bn_selection, generate_candidate_pool, run_fedtiny, FedTinyConfig, SelectionConfig,
};
use fedtiny_suite::fl::{ExperimentEnv, FlConfig, ModelSpec};

fn main() {
    // 1. A federated environment: synthetic CIFAR-10 split across 4 devices
    //    with a Dirichlet(0.5) non-iid partition.
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 16,
        test_per_class: 10,
        resolution: 8,
        channels: 3,
        seed: 42,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = 4;
    cfg.rounds = 12;
    cfg.seed = 42;
    let env = ExperimentEnv::new(synth, cfg);
    println!(
        "environment: {} devices, {} train samples, {} test samples",
        env.num_devices(),
        env.total_train_samples(),
        env.test.len()
    );

    // 2. Peek at what the adaptive BN selection module does.
    let spec = ModelSpec::ResNet18 {
        width: 0.125,
        input: 8,
    };
    let model = env.build_model(&spec);
    let sel = SelectionConfig {
        d_target: 0.05,
        pool_size: 6,
        noise_spread: 0.5,
        seed: 42,
    };
    let pool = generate_candidate_pool(model.as_ref(), &sel);
    let outcome = adaptive_bn_selection(model.as_ref(), &env, &pool);
    println!(
        "selection: candidate {} of {} wins (losses: {:?})",
        outcome.selected,
        pool.len(),
        outcome
            .candidate_losses
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>()
    );

    // 3. The full pipeline: selection + sparse FedAvg + progressive pruning.
    let mut ft = FedTinyConfig::paper_default(spec, 0.05, env.cfg.local_epochs);
    ft.pool_size = 6;
    ft.progressive = Some(fedtiny_suite::fedtiny::ProgressiveConfig {
        schedule: fedtiny_suite::sparse::PruneSchedule::scaled_for(
            env.cfg.rounds,
            env.cfg.local_epochs,
        ),
        granularity: fedtiny_suite::fedtiny::Granularity::Block,
        backward_order: true,
        start_round: 2,
    });
    let result = run_fedtiny(&env, &ft);
    println!("{}", result.format_summary());
}
