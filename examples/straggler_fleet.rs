//! Straggler fleet: the same federated run under the three round
//! schedulers on a heterogeneous fast/balanced/slow device fleet, showing
//! accuracy against *simulated* fleet time (not host wall-clock) plus a
//! per-device timeline excerpt of the buffered run.
//!
//! ```bash
//! cargo run --release --example straggler_fleet
//! # pick the wire codec for the update exchange:
//! cargo run --release --example straggler_fleet -- --codec quant_int8
//! # codecs: dense (default) | mask_csr | quant_int8 | top_k
//! # pick the host worker-thread count (0 = all cores):
//! cargo run --release --example straggler_fleet -- --threads 4
//! # checkpoint every round (one file per scheduler) and resume later:
//! cargo run --release --example straggler_fleet -- --checkpoint /tmp/fleet.ckpt
//! cargo run --release --example straggler_fleet -- --checkpoint /tmp/fleet.ckpt --resume
//! # hostile fleet: device 1 sign-flips, device 4 replays; trim the poison:
//! cargo run --release --example straggler_fleet -- \
//!   --aggregator trimmed_mean:0.25 --byzantine 1:sign_flip:8 --byzantine 4:replay
//! ```
//!
//! Transfers are billed at the *measured* encoded payload size, so the
//! codec choice changes the simulated makespans, not just a byte counter.
//! `--threads N` runs the fleet on the shared `ft-runtime` pool and prints
//! the host wall-clock speedup against a single-thread rerun — the
//! *simulated* makespans are bit-identical either way (the runtime
//! determinism contract), only the host gets faster.

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fl::{
    no_hook, run_with, AdversarialTransport, Aggregator, Behavior, CheckpointSpec, Codec,
    CostLedger, DeviceProfile, ExperimentEnv, FlConfig, InProcess, ModelSpec, RunOptions,
    Scheduler, TimelineEvent,
};
use fedtiny_suite::nn::sparse_layout;
use fedtiny_suite::sparse::Mask;

const SEED: u64 = 17;
/// Seed of the adversary's corruption streams (`--byzantine` devices).
const ADV_SEED: u64 = 4242;
const DEVICES: usize = 6;

/// Parses `--codec <name>` from the command line (default: dense).
fn codec_from_args() -> Codec {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--codec") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            Codec::from_name(name).unwrap_or_else(|| {
                eprintln!("unknown codec {name:?}; expected dense | mask_csr | quant_int8 | top_k");
                std::process::exit(2);
            })
        }
        None => Codec::Dense,
    }
}

/// Parses `--checkpoint <path>` (default: no checkpointing). Each policy
/// saves to its own `<path>.<scheduler>` file so the three runs never
/// collide.
fn checkpoint_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether `--resume` was passed (resume each policy from its checkpoint
/// file when one exists; a missing file starts fresh).
fn resume_from_args() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// Parses `--aggregator <name>` (default: fedavg). Robust rules defend the
/// mean against the `--byzantine` devices' poisoned updates.
fn aggregator_from_args() -> Aggregator {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--aggregator") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            Aggregator::from_name(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown aggregator {name:?}; expected fedavg | trimmed_mean[:beta] | \
                     median | norm_clipped[:tau]"
                );
                std::process::exit(2);
            })
        }
        None => Aggregator::FedAvg,
    }
}

/// Parses every `--byzantine device:behavior` occurrence into the
/// per-device behavior table (`Honest` where unlisted).
fn behaviors_from_args() -> Vec<Behavior> {
    let args: Vec<String> = std::env::args().collect();
    let mut table = vec![Behavior::Honest; DEVICES];
    for (i, _) in args
        .iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == "--byzantine")
    {
        let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
        let parsed = spec.split_once(':').and_then(|(dev, behavior)| {
            Some((dev.parse::<usize>().ok()?, Behavior::from_name(behavior)?))
        });
        match parsed {
            Some((device, behavior)) if device < DEVICES => table[device] = behavior,
            Some((device, _)) => {
                eprintln!("--byzantine device {device} out of range (fleet has {DEVICES})");
                std::process::exit(2);
            }
            None => {
                eprintln!(
                    "bad --byzantine spec {spec:?}; expected device:behavior, e.g. \
                     1:sign_flip:8, 3:garbage, 2:replay"
                );
                std::process::exit(2);
            }
        }
    }
    table
}

/// Parses `--threads <n>` (default 0 = auto: `FT_THREADS`, else all cores).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--threads") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads expects a non-negative integer");
                std::process::exit(2);
            }),
        None => 0,
    }
}

fn build_env(
    scheduler: Scheduler,
    codec: Codec,
    threads: usize,
    aggregator: Aggregator,
) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 12,
        test_per_class: 8,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = DEVICES;
    cfg.rounds = 8;
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    cfg.codec = codec;
    cfg.threads = threads;
    cfg.aggregator = aggregator;
    let env = ExperimentEnv::new(synth, cfg);
    let fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.with_fleet(fleet).with_scheduler(scheduler)
}

/// One full run; returns the final accuracy, the ledger, and the host
/// wall-clock seconds of the round loop (environment setup excluded).
/// With `checkpoint` set, the run saves to `<path>.<scheduler>` every round
/// and `resume` continues from an existing file.
#[allow(clippy::too_many_arguments)]
fn run(
    scheduler: Scheduler,
    codec: Codec,
    threads: usize,
    checkpoint: Option<&str>,
    resume: bool,
    aggregator: Aggregator,
    behaviors: &[Behavior],
) -> (f32, CostLedger, f64) {
    let env = build_env(scheduler, codec, threads, aggregator);
    let mut model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let started = std::time::Instant::now();
    // A hostile fleet routes every update through the adversary's
    // corruption layer; a clean one takes the plain in-process path.
    let hostile = behaviors.iter().any(|b| !matches!(b, Behavior::Honest));
    let mut plain = InProcess;
    let mut adversarial = AdversarialTransport::new(InProcess, behaviors.to_vec(), ADV_SEED);
    let options = RunOptions {
        transport: if hostile {
            &mut adversarial
        } else {
            &mut plain
        },
        checkpoint: checkpoint
            .map(|p| CheckpointSpec::every_round(format!("{p}.{}", scheduler.name()))),
        resume,
        halt_after: None,
        hook_save: None,
        hook_load: None,
        presence: None,
    };
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        options,
    )
    .unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        std::process::exit(1);
    });
    if hostile {
        ledger.record_handshake_faults(adversarial.handshake_faults());
    }
    let wall = started.elapsed().as_secs_f64();
    (*history.last().expect("nonempty history"), ledger, wall)
}

fn main() {
    let codec = codec_from_args();
    let threads = threads_from_args();
    let checkpoint = checkpoint_from_args();
    let resume = resume_from_args();
    let aggregator = aggregator_from_args();
    let behaviors = behaviors_from_args();
    let hostile = behaviors.iter().any(|b| !matches!(b, Behavior::Honest));
    let resolved = fedtiny_suite::fl::resolve_threads(threads);
    // A deadline inside the fleet's spread (geometric mean of the fastest
    // and slowest device's simulated round time).
    let deadline_secs = {
        let env = build_env(Scheduler::Synchronous, codec, threads, aggregator);
        let model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fedtiny_suite::fl::fleet_spread_deadline(&env, &model.arch(), &densities)
    };
    let policies = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs },
        Scheduler::Buffered { buffer_k: 3 },
    ];
    // Self-describing run header: transport, wire codec, worker pool, and
    // where (if anywhere) the run checkpoints.
    let byzantine_label = if hostile {
        behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| !matches!(b, Behavior::Honest))
            .map(|(d, b)| format!("{d}:{}", b.name()))
            .collect::<Vec<_>>()
            .join(",")
    } else {
        "-".to_string()
    };
    println!(
        "transport: in_process | wire codec: {} | aggregator: {} | byzantine: {byzantine_label} | \
         worker threads: {resolved} | checkpoint: {}{}",
        codec.name(),
        aggregator.name(),
        checkpoint
            .as_deref()
            .map(|p| format!("{p}.<scheduler>"))
            .unwrap_or_else(|| "-".into()),
        if resume { " (resume)" } else { "" },
    );
    println!(
        "{:>12}  {:>6}  {:>14}  {:>10}  {:>8}  {:>7}  {:>10}",
        "scheduler", "top1", "sim_makespan_s", "zero_prog", "dropped", "stale", "upload_kb"
    );
    let mut buffered_timeline: Vec<TimelineEvent> = Vec::new();
    let mut sync_wall = None;
    for policy in policies {
        let (top1, ledger, wall) = run(
            policy,
            codec,
            threads,
            checkpoint.as_deref(),
            resume,
            aggregator,
            &behaviors,
        );
        if matches!(policy, Scheduler::Synchronous) {
            sync_wall = Some((wall, ledger.sim_makespan_secs()));
        }
        let max_stale = ledger
            .timeline()
            .iter()
            .map(|e| e.staleness)
            .max()
            .unwrap_or(0);
        println!(
            "{:>12}  {top1:>6.4}  {:>14.1}  {:>10}  {:>8}  {max_stale:>7}  {:>10.1}",
            policy.name(),
            ledger.sim_makespan_secs(),
            ledger.zero_progress_rounds(),
            ledger.dropped_updates(),
            ledger.total_payload_upload_bytes() / 1e3,
        );
        if hostile {
            let f = ledger.faults();
            println!(
                "{:>12}  quarantined {} (malformed {} | replays {} | disconnects {} | \
                 inflated {}), clipped {}, rejected handshakes {}",
                "", // aligns under the scheduler column
                ledger.quarantined_updates(),
                f.malformed_frames,
                f.replays,
                f.disconnects,
                f.inflated_samples,
                f.clipped_updates,
                f.rejected_handshakes,
            );
        }
        if matches!(policy, Scheduler::Buffered { .. }) {
            buffered_timeline = ledger.timeline().to_vec();
        }
    }

    println!("\nbuffered timeline (first 12 arrivals):");
    println!(
        "{:>7}  {:>6}  {:>9}  {:>10}  {:>7}  {:>5}",
        "device", "round", "start_s", "arrive_s", "applied", "stale"
    );
    for e in buffered_timeline.iter().take(12) {
        println!(
            "{:>7}  {:>6}  {:>9.1}  {:>10.1}  {:>7}  {:>5}",
            e.device, e.round, e.start_secs, e.finish_secs, e.applied, e.staleness
        );
    }
    println!(
        "\nexpected shape: the synchronous barrier pays the slow tier's time every round;\n\
         the deadline bounds each round at {deadline_secs:.1} simulated seconds by cutting\n\
         stragglers; buffered aggregation keeps fast devices busy (smallest makespan)\n\
         and absorbs slow devices' updates later, staleness-discounted."
    );

    // Host-parallelism report: rerun the synchronous fleet single-threaded
    // and compare wall clocks. The *simulated* makespan must be identical
    // bit-for-bit — the runtime only changes how fast the host computes it.
    if resolved > 1 {
        let (wall_n, sim_n) = sync_wall.expect("synchronous policy ran");
        // The thread-count rerun never touches the checkpoint files: a
        // resumed run would skip the rounds this comparison measures.
        let (_, ledger_1, wall_1) = run(
            Scheduler::Synchronous,
            codec,
            1,
            None,
            false,
            aggregator,
            &behaviors,
        );
        assert_eq!(
            ledger_1.sim_makespan_secs().to_bits(),
            sim_n.to_bits(),
            "simulated makespan drifted across thread counts"
        );
        println!(
            "\nhost speedup (synchronous round loop): {:.2}x at {resolved} threads \
             ({:.0} ms -> {:.0} ms; sim makespan identical at {:.1}s)",
            wall_1 / wall_n.max(f64::MIN_POSITIVE),
            wall_1 * 1e3,
            wall_n * 1e3,
            sim_n,
        );
    }
}
