//! Straggler fleet: the same federated run under the three round
//! schedulers on a heterogeneous fast/balanced/slow device fleet, showing
//! accuracy against *simulated* fleet time (not host wall-clock) plus a
//! per-device timeline excerpt of the buffered run.
//!
//! ```bash
//! cargo run --release --example straggler_fleet
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, CostLedger, DeviceProfile, ExperimentEnv, FlConfig, ModelSpec,
    Scheduler, TimelineEvent,
};
use fedtiny_suite::nn::sparse_layout;
use fedtiny_suite::sparse::Mask;

const SEED: u64 = 17;

fn build_env(scheduler: Scheduler) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 12,
        test_per_class: 8,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = 6;
    cfg.rounds = 8;
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    let env = ExperimentEnv::new(synth, cfg);
    let fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.with_fleet(fleet).with_scheduler(scheduler)
}

fn run(scheduler: Scheduler) -> (f32, CostLedger) {
    let env = build_env(scheduler);
    let mut model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
    );
    (*history.last().expect("nonempty history"), ledger)
}

fn main() {
    // A deadline inside the fleet's spread (geometric mean of the fastest
    // and slowest device's simulated round time).
    let deadline_secs = {
        let env = build_env(Scheduler::Synchronous);
        let model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fedtiny_suite::fl::fleet_spread_deadline(&env, &model.arch(), &densities)
    };
    let policies = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs },
        Scheduler::Buffered { buffer_k: 3 },
    ];
    println!(
        "{:>12}  {:>6}  {:>14}  {:>10}  {:>8}  {:>7}",
        "scheduler", "top1", "sim_makespan_s", "zero_prog", "dropped", "stale"
    );
    let mut buffered_timeline: Vec<TimelineEvent> = Vec::new();
    for policy in policies {
        let (top1, ledger) = run(policy);
        let max_stale = ledger
            .timeline()
            .iter()
            .map(|e| e.staleness)
            .max()
            .unwrap_or(0);
        println!(
            "{:>12}  {top1:>6.4}  {:>14.1}  {:>10}  {:>8}  {max_stale:>7}",
            policy.name(),
            ledger.sim_makespan_secs(),
            ledger.zero_progress_rounds(),
            ledger.dropped_updates(),
        );
        if matches!(policy, Scheduler::Buffered { .. }) {
            buffered_timeline = ledger.timeline().to_vec();
        }
    }

    println!("\nbuffered timeline (first 12 arrivals):");
    println!(
        "{:>7}  {:>6}  {:>9}  {:>10}  {:>7}  {:>5}",
        "device", "round", "start_s", "arrive_s", "applied", "stale"
    );
    for e in buffered_timeline.iter().take(12) {
        println!(
            "{:>7}  {:>6}  {:>9.1}  {:>10.1}  {:>7}  {:>5}",
            e.device, e.round, e.start_secs, e.finish_secs, e.applied, e.staleness
        );
    }
    println!(
        "\nexpected shape: the synchronous barrier pays the slow tier's time every round;\n\
         the deadline bounds each round at {deadline_secs:.1} simulated seconds by cutting\n\
         stragglers; buffered aggregation keeps fast devices busy (smallest makespan)\n\
         and absorbs slow devices' updates later, staleness-discounted."
    );
}
