//! Straggler fleet: the same federated run under the three round
//! schedulers on a heterogeneous fast/balanced/slow device fleet. This
//! example is now a thin wrapper over the `ft` operator CLI:
//!
//! ```bash
//! cargo run --release --example straggler_fleet
//! # equivalent: ft run --preset straggler
//! cargo run --release --example straggler_fleet -- --codec quant_int8 --threads 4
//! # equivalent: ft run --preset straggler --codec quant_int8 --threads 4
//! ```
//!
//! All knobs (--codec, --threads, --checkpoint, --resume, --aggregator,
//! --byzantine) pass through unchanged. See `ft help run`.

fn main() {
    let mut argv: Vec<String> = vec!["run".into(), "--preset".into(), "straggler".into()];
    argv.extend(std::env::args().skip(1));
    std::process::exit(ft_cli::dispatch(&argv));
}
