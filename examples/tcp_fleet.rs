//! TCP fleet: the federation server and its devices on opposite ends of
//! real sockets — every broadcast and every update crosses a length-prefixed
//! frame on 127.0.0.1, and the final aggregated model is asserted
//! **bit-identical** to the in-process run of the same seed.
//!
//! ```bash
//! # Everything in one process (server + 4 client threads on an ephemeral
//! # loopback port), asserting TCP == InProcess — the CI smoke mode:
//! cargo run --release --example tcp_fleet -- --demo
//!
//! # Or as separate processes:
//! cargo run --release --example tcp_fleet -- --listen 127.0.0.1:7070 &
//! for k in 0 1 2 3; do
//!   cargo run --release --example tcp_fleet -- --connect 127.0.0.1:7070 --device $k &
//! done
//! wait
//!
//! # Durability: checkpoint every round, kill at round 3, resume:
//! cargo run --release --example tcp_fleet -- --demo --checkpoint /tmp/fleet.ckpt --halt-after 3
//! cargo run --release --example tcp_fleet -- --demo --checkpoint /tmp/fleet.ckpt --resume
//!
//! # Hostile fleet: device 1 sign-flips its deltas, device 3 sends garbage,
//! # the server trims the poison and quarantines the garbage — still
//! # asserting TCP == in-process (both run the same adversary schedule):
//! cargo run --release --example tcp_fleet -- --demo \
//!   --aggregator trimmed_mean:0.25 --byzantine 1:sign_flip:8 --byzantine 3:garbage
//! ```
//!
//! Both ends build the same [`ExperimentEnv`] from the shared seed — the
//! synthetic datasets are pure functions of it, so no training data ever
//! crosses the wire, only model snapshots and encoded update deltas.

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fl::{
    no_hook, run_byzantine_tcp_device, run_federated_rounds, run_tcp_device, run_with,
    AdversarialTransport, Aggregator, Behavior, CheckpointSpec, Codec, CostLedger, ExperimentEnv,
    FlConfig, InProcess, ModelSpec, RunOptions, TcpTransport,
};
use fedtiny_suite::nn::{flat_params, sparse_layout};
use fedtiny_suite::sparse::Mask;
use std::net::TcpListener;

const SEED: u64 = 23;
/// Seed of the adversary's corruption streams — shared by the TCP clients
/// and the in-process twin so both produce identical hostile bytes.
const ADV_SEED: u64 = 4242;

#[derive(Clone, Debug)]
struct Options {
    mode: Mode,
    devices: usize,
    rounds: usize,
    codec: Codec,
    aggregator: Aggregator,
    byzantine: Vec<(usize, Behavior)>,
    checkpoint: Option<String>,
    resume: bool,
    halt_after: Option<usize>,
}

impl Options {
    /// Per-device behavior table (`Honest` default, overridden by
    /// `--byzantine device:behavior` entries).
    fn behaviors(&self) -> Vec<Behavior> {
        let mut table = vec![Behavior::Honest; self.devices];
        for &(device, behavior) in &self.byzantine {
            table[device] = behavior;
        }
        table
    }
}

#[derive(Clone, Debug)]
enum Mode {
    Demo,
    Listen(String),
    Connect { addr: String, device: usize },
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let mode = if let Some(addr) = get("--listen") {
        Mode::Listen(addr)
    } else if let Some(addr) = get("--connect") {
        let device = get("--device")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--connect requires --device <k>");
                std::process::exit(2);
            });
        Mode::Connect { addr, device }
    } else {
        Mode::Demo
    };
    let codec = match get("--codec") {
        Some(name) => match Codec::from_name(&name) {
            // `top_k` defaults to error feedback ON, but error-feedback
            // residuals live on the device and cannot be rolled back over
            // a remote transport (the server refuses the combination) —
            // the TCP fleet therefore runs the stateless variant.
            Some(Codec::TopK { k_frac, .. }) => Codec::TopK {
                k_frac,
                error_feedback: false,
            },
            Some(codec) => codec,
            None => {
                eprintln!(
                    "unknown codec {name:?}; expected dense | mask_csr | quant_int8 | top_k \
                     (top_k runs without error feedback over TCP)"
                );
                std::process::exit(2);
            }
        },
        None => Codec::Dense,
    };
    let aggregator = match get("--aggregator") {
        Some(name) => Aggregator::from_name(&name).unwrap_or_else(|| {
            eprintln!(
                "unknown aggregator {name:?}; expected fedavg | trimmed_mean[:beta] | \
                 median | norm_clipped[:tau]"
            );
            std::process::exit(2);
        }),
        None => Aggregator::FedAvg,
    };
    let devices = get("--devices").and_then(|v| v.parse().ok()).unwrap_or(4);
    // `--byzantine device:behavior` may repeat — one entry per hostile device.
    let byzantine: Vec<(usize, Behavior)> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == "--byzantine")
        .map(|(i, _)| {
            let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
            let parsed = spec.split_once(':').and_then(|(dev, behavior)| {
                Some((dev.parse::<usize>().ok()?, Behavior::from_name(behavior)?))
            });
            match parsed {
                Some((device, _)) if device >= devices => {
                    eprintln!("--byzantine device {device} out of range (fleet has {devices})");
                    std::process::exit(2);
                }
                Some(pair) => pair,
                None => {
                    eprintln!(
                        "bad --byzantine spec {spec:?}; expected device:behavior, e.g. \
                         1:sign_flip:8, 3:garbage, 2:replay, 0:handshake_drop"
                    );
                    std::process::exit(2);
                }
            }
        })
        .collect();
    Options {
        mode,
        devices,
        rounds: get("--rounds").and_then(|v| v.parse().ok()).unwrap_or(6),
        codec,
        aggregator,
        byzantine,
        checkpoint: get("--checkpoint"),
        resume: has("--resume"),
        halt_after: get("--halt-after").and_then(|v| v.parse().ok()),
    }
}

/// The environment both ends derive from the shared seed.
fn build_env(opts: &Options) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 12,
        test_per_class: 8,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = opts.devices;
    cfg.rounds = opts.rounds;
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    cfg.codec = opts.codec;
    cfg.aggregator = opts.aggregator;
    ExperimentEnv::new(synth, cfg)
}

fn model_spec() -> ModelSpec {
    ModelSpec::SmallCnn { width: 4, input: 8 }
}

/// Self-describing run header (transport, codec, aggregator, adversaries,
/// checkpoint path).
fn print_header(transport: &str, opts: &Options) {
    let byzantine = if opts.byzantine.is_empty() {
        "-".to_string()
    } else {
        opts.byzantine
            .iter()
            .map(|(d, b)| format!("{d}:{}", b.name()))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "transport: {transport} | codec: {} | aggregator: {} | byzantine: {byzantine} | \
         devices: {} | rounds: {} | checkpoint: {}{}",
        opts.codec.name(),
        opts.aggregator.name(),
        opts.devices,
        opts.rounds,
        opts.checkpoint.as_deref().unwrap_or("-"),
        if opts.resume { " (resume)" } else { "" },
    );
}

/// Runs the server rounds over an accepted TCP fleet and returns
/// `(final accuracy, final params, ledger)`.
fn run_server(transport: &mut TcpTransport, opts: &Options) -> (f32, Vec<f32>, CostLedger) {
    let env = build_env(opts);
    let mut model = env.build_model(&model_spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport,
            checkpoint: opts.checkpoint.as_ref().map(CheckpointSpec::every_round),
            resume: opts.resume,
            halt_after: opts.halt_after,
            hook_save: None,
            hook_load: None,
            presence: None,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("server run failed: {e}");
        std::process::exit(1);
    });
    let acc = history.last().copied().unwrap_or(f32::NAN);
    (acc, flat_params(model.as_ref()), ledger)
}

/// The in-process reference run of the same seed. A clean fleet takes the
/// classic `run_federated_rounds` path; a hostile one replays the same
/// adversary schedule through [`AdversarialTransport`], so the reference
/// quarantines the identical bytes the TCP server saw.
fn run_reference(opts: &Options) -> (f32, Vec<f32>, CostLedger) {
    let env = build_env(opts);
    let mut model = env.build_model(&model_spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = if opts.byzantine.is_empty() {
        run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        )
    } else {
        let mut transport = AdversarialTransport::new(InProcess, opts.behaviors(), ADV_SEED);
        let history = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .unwrap_or_else(|e| {
            eprintln!("reference run failed: {e}");
            std::process::exit(1);
        });
        ledger.record_handshake_faults(transport.handshake_faults());
        history
    };
    let acc = history.last().copied().unwrap_or(f32::NAN);
    (acc, flat_params(model.as_ref()), ledger)
}

/// One machine-readable line of the server's fault ledger — the CI
/// hostile-fleet job collects these as its quarantine-stats artifact.
fn print_quarantine_stats(opts: &Options, ledger: &CostLedger) {
    let f = ledger.faults();
    println!(
        "quarantine_stats: {{\"aggregator\":\"{}\",\"malformed_frames\":{},\"replays\":{},\
         \"disconnects\":{},\"inflated_samples\":{},\"clipped_updates\":{},\
         \"rejected_handshakes\":{},\"quarantined\":{}}}",
        opts.aggregator.name(),
        f.malformed_frames,
        f.replays,
        f.disconnects,
        f.inflated_samples,
        f.clipped_updates,
        f.rejected_handshakes,
        ledger.quarantined_updates(),
    );
}

/// Compares the TCP run against the in-process reference and exits
/// non-zero on any drift. Skipped for halted (checkpoint-partial) runs.
fn assert_matches_reference(tcp: &(f32, Vec<f32>, CostLedger), opts: &Options) {
    if let Some(halted) = opts.halt_after {
        println!("halted after {halted} rounds — checkpoint saved, reference comparison skipped");
        return;
    }
    let reference = run_reference(opts);
    let drifted = tcp
        .1
        .iter()
        .zip(reference.1.iter())
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    println!(
        "tcp top1 {:.4} | in_process top1 {:.4} | parameter drift: {drifted}/{} coordinates",
        tcp.0,
        reference.0,
        reference.1.len(),
    );
    assert_eq!(
        drifted, 0,
        "TCP run diverged from the in-process run — the byte boundary changed the math"
    );
    assert_eq!(tcp.0.to_bits(), reference.0.to_bits(), "accuracy drifted");
    if !opts.byzantine.is_empty() {
        assert_eq!(
            tcp.2.faults(),
            reference.2.faults(),
            "TCP quarantine counters diverged from the in-process adversary twin"
        );
        print_quarantine_stats(opts, &tcp.2);
    }
    println!(
        "ok: final aggregated model is bit-identical across the TCP byte boundary \
         ({:.1} simulated seconds, {:.1} KB measured uploads)",
        tcp.2.sim_makespan_secs(),
        tcp.2.total_payload_upload_bytes() / 1e3,
    );
}

fn main() {
    let opts = parse_args();
    match opts.mode.clone() {
        Mode::Connect { addr, device } => {
            print_header("tcp (device)", &opts);
            let env = build_env(&opts);
            // A device listed in `--byzantine` runs the misbehaving client;
            // everyone else speaks the honest protocol.
            let behavior = opts
                .byzantine
                .iter()
                .find(|(d, _)| *d == device)
                .map(|(_, b)| *b)
                .unwrap_or(Behavior::Honest);
            let result = match behavior {
                Behavior::Honest => run_tcp_device(addr.as_str(), device, &env, &model_spec()),
                hostile => run_byzantine_tcp_device(
                    addr.as_str(),
                    device,
                    &env,
                    &model_spec(),
                    hostile,
                    ADV_SEED,
                ),
            };
            if let Err(e) = result {
                eprintln!("device {device} failed: {e}");
                std::process::exit(1);
            }
            println!("device {device}: done ({})", behavior.name());
        }
        Mode::Listen(addr) => {
            print_header("tcp (server)", &opts);
            println!(
                "listening on {addr}, waiting for {} devices...",
                opts.devices
            );
            // A hostile fleet needs the tolerant accept loop (handshake
            // screening); a clean one keeps the strict listener.
            let mut transport = if opts.byzantine.is_empty() {
                TcpTransport::listen(addr.as_str(), opts.devices).unwrap_or_else(|e| {
                    eprintln!("listen failed: {e}");
                    std::process::exit(1);
                })
            } else {
                let listener = TcpListener::bind(addr.as_str()).unwrap_or_else(|e| {
                    eprintln!("listen failed: {e}");
                    std::process::exit(1);
                });
                TcpTransport::accept_fleet_tolerant(listener, opts.devices).unwrap_or_else(|e| {
                    eprintln!("accept failed: {e}");
                    std::process::exit(1);
                })
            };
            let mut tcp = run_server(&mut transport, &opts);
            tcp.2.record_handshake_faults(transport.handshake_faults());
            assert_matches_reference(&tcp, &opts);
        }
        Mode::Demo => {
            print_header("tcp (demo: server + client threads)", &opts);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr");
            println!("loopback fleet on {addr}");
            let behaviors = opts.behaviors();
            let client_opts = opts.clone();
            let clients: Vec<_> = (0..opts.devices)
                .map(|k| {
                    let o = client_opts.clone();
                    let behavior = behaviors[k];
                    std::thread::spawn(move || {
                        let env = build_env(&o);
                        match behavior {
                            Behavior::Honest => run_tcp_device(addr, k, &env, &model_spec()),
                            hostile => run_byzantine_tcp_device(
                                addr,
                                k,
                                &env,
                                &model_spec(),
                                hostile,
                                ADV_SEED,
                            ),
                        }
                        .unwrap_or_else(|e| panic!("device {k} failed: {e}"));
                    })
                })
                .collect();
            let mut transport = if opts.byzantine.is_empty() {
                TcpTransport::accept_fleet(&listener, opts.devices).unwrap_or_else(|e| {
                    eprintln!("accept failed: {e}");
                    std::process::exit(1);
                })
            } else {
                TcpTransport::accept_fleet_tolerant(listener, opts.devices).unwrap_or_else(|e| {
                    eprintln!("accept failed: {e}");
                    std::process::exit(1);
                })
            };
            let mut tcp = run_server(&mut transport, &opts);
            tcp.2.record_handshake_faults(transport.handshake_faults());
            for c in clients {
                c.join().expect("client thread");
            }
            assert_matches_reference(&tcp, &opts);
        }
    }
}
