//! TCP fleet: the federation server and its devices on opposite ends of
//! real sockets. This example is now a thin wrapper over the `ft` operator
//! CLI — its legacy flags map directly onto `ft serve` / `ft device`:
//!
//! ```bash
//! # Everything in one process (server + client threads on an ephemeral
//! # loopback port), asserting TCP == InProcess — the CI smoke mode:
//! cargo run --release --example tcp_fleet -- --demo
//! # equivalent: ft serve --demo
//!
//! # Or as separate processes:
//! cargo run --release --example tcp_fleet -- --listen 127.0.0.1:7070 &
//! for k in 0 1 2 3; do
//!   cargo run --release --example tcp_fleet -- --connect 127.0.0.1:7070 --device $k &
//! done
//! wait
//! # equivalent: ft serve --listen ... / ft device --connect ... --device $k
//! ```
//!
//! All knobs (--codec, --aggregator, --byzantine, --checkpoint, --resume,
//! --halt-after, --devices, --rounds) pass through unchanged. See
//! `ft help serve` and `ft help device`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    // Translate the legacy mode flags onto the `ft` subcommand surface;
    // everything else passes through verbatim (`--demo` is `ft serve`'s
    // default mode, so the bare flag is simply dropped).
    let mut argv: Vec<String> = if has("--connect") {
        vec!["device".into()]
    } else {
        vec!["serve".into()]
    };
    argv.extend(args.into_iter().filter(|a| a != "--demo"));
    std::process::exit(ft_cli::dispatch(&argv));
}
