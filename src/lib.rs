//! Facade crate for the FedTiny reproduction workspace.
//!
//! Re-exports every subsystem crate under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense f32 tensors, matmul, im2col convolution helpers, and
//!   the CSR sparse kernels (`spmm`/`dsmm`/`sddmm`) behind the sparse
//!   execution engine
//! - [`nn`] — layers, models (ResNet18 / VGG11 / SmallCnn), losses, SGD, and
//!   the density-threshold dispatch that routes masked layers onto the
//!   sparse kernels
//! - [`sparse`] — masks, density accounting, CSR weight packing
//!   ([`sparse::CsrMatrix`]), top-k buffers, schedules
//! - [`data`] — synthetic dataset profiles and Dirichlet non-iid partitioning
//! - [`fl`] — the federated-learning simulator (FedAvg, cost ledger)
//! - [`pruning`] — baseline pruning methods (SNIP, SynFlow, FL-PQSU, PruneFL,
//!   FedDST, LotteryFL)
//! - [`fedtiny`] — the paper's contribution: adaptive BN selection and
//!   progressive pruning
//! - [`metrics`] — analytic FLOPs / memory / communication accounting
//!
//! # Examples
//!
//! ```no_run
//! use fedtiny_suite::fedtiny::{FedTinyConfig, run_fedtiny};
//! use fedtiny_suite::fl::ExperimentEnv;
//!
//! let env = ExperimentEnv::tiny_for_tests(42);
//! let result = run_fedtiny(&env, &FedTinyConfig::default());
//! println!("top-1 accuracy: {:.4}", result.accuracy);
//! ```

pub use fedtiny;
pub use ft_data as data;
pub use ft_fl as fl;
pub use ft_metrics as metrics;
pub use ft_nn as nn;
pub use ft_pruning as pruning;
pub use ft_runtime as runtime;
pub use ft_sparse as sparse;
pub use ft_tensor as tensor;
