//! API-contract tests from the Rust API guidelines: common-trait coverage
//! (C-COMMON-TRAITS), Send/Sync (C-SEND-SYNC), serde round-trips (C-SERDE),
//! and Debug never being empty (C-DEBUG-NONEMPTY).

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{FedTinyConfig, Granularity, ProgressiveConfig, SelectionMode};
use fedtiny_suite::fl::{FlConfig, ModelSpec, RunResult};
use fedtiny_suite::nn::optim::SgdConfig;
use fedtiny_suite::nn::{BnStats, Model, ParamKind};
use fedtiny_suite::sparse::{Mask, PruneSchedule, SparseLayout, TopKBuffer};
use fedtiny_suite::tensor::Tensor;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Tensor>();
    assert_send_sync::<Mask>();
    assert_send_sync::<SparseLayout>();
    assert_send_sync::<TopKBuffer>();
    assert_send_sync::<FlConfig>();
    assert_send_sync::<FedTinyConfig>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<Box<dyn Model>>();
}

#[test]
fn debug_representations_are_never_empty() {
    let samples: Vec<String> = vec![
        format!("{:?}", Tensor::zeros(&[0])),
        format!("{:?}", Mask::from_layers(vec![])),
        format!("{:?}", TopKBuffer::new(0)),
        format!("{:?}", PruneSchedule::paper_default(1)),
        format!("{:?}", SgdConfig::default()),
        format!("{:?}", ParamKind::ConvWeight),
        format!("{:?}", Granularity::Block),
        format!("{:?}", SelectionMode::AdaptiveBn),
        format!("{:?}", DatasetProfile::Cifar10),
        format!("{:?}", ModelSpec::resnet_test()),
    ];
    for s in samples {
        assert!(!s.trim().is_empty());
    }
}

#[test]
fn config_types_roundtrip_through_json() {
    let cfg = FedTinyConfig::paper_default(
        ModelSpec::ResNet18 {
            width: 1.0,
            input: 32,
        },
        0.01,
        5,
    );
    let json = serde_json::to_string(&cfg).expect("serialize");
    let back: FedTinyConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(cfg, back);

    let fl = FlConfig::paper_default();
    let back: FlConfig =
        serde_json::from_str(&serde_json::to_string(&fl).expect("ser")).expect("de");
    assert_eq!(fl, back);

    let synth = SynthConfig::bench_default(DatasetProfile::Cinic10, 7);
    let back: SynthConfig =
        serde_json::from_str(&serde_json::to_string(&synth).expect("ser")).expect("de");
    assert_eq!(synth, back);

    let prog = ProgressiveConfig::paper_default(5);
    let back: ProgressiveConfig =
        serde_json::from_str(&serde_json::to_string(&prog).expect("ser")).expect("de");
    assert_eq!(prog, back);
}

#[test]
fn mask_roundtrips_through_json() {
    let layout = SparseLayout::new(vec![("a".into(), 5), ("b".into(), 3)]);
    let mut mask = Mask::ones(&layout);
    mask.set(0, 2, false);
    mask.set(1, 0, false);
    let back: Mask = serde_json::from_str(&serde_json::to_string(&mask).expect("ser")).expect("de");
    assert_eq!(mask, back);
    assert_eq!(back.density(), mask.density());
}

#[test]
fn run_result_roundtrips_through_json() {
    let r = RunResult {
        method: "fedtiny".into(),
        accuracy: 0.8523,
        history: vec![0.5, 0.7, 0.8523],
        final_density: 0.01,
        max_round_flops: 1.17e12,
        memory_bytes: 2.79e6,
        comm_bytes: 1.0e8,
        payload_comm_bytes: 8.5e7,
        payload_upload_bytes: 4.0e7,
        codec: "mask_csr".into(),
        extra_flops: 9.15e10,
        realized_round_flops: 1.05e12,
        train_wall_secs: 12.5,
        sim_makespan_secs: 321.0,
    };
    let json = serde_json::to_string_pretty(&r).expect("ser");
    let back: RunResult = serde_json::from_str(&json).expect("de");
    assert_eq!(back.method, "fedtiny");
    assert_eq!(back.history.len(), 3);
    assert_eq!(back.best_accuracy(), 0.8523);
}

#[test]
fn bn_stats_roundtrip_and_clone() {
    let s = BnStats {
        mean: vec![0.1, -0.2],
        var: vec![1.5, 0.9],
    };
    let back: BnStats = serde_json::from_str(&serde_json::to_string(&s).expect("ser")).expect("de");
    assert_eq!(s, back);
    let c = s.clone();
    assert_eq!(c.mean, s.mean);
}

#[test]
fn tensors_roundtrip_through_json() {
    let t = Tensor::from_vec(vec![1.5, -2.5, 0.0, 3.25], &[2, 2]);
    let back: Tensor = serde_json::from_str(&serde_json::to_string(&t).expect("ser")).expect("de");
    assert_eq!(t, back);
}

#[test]
fn model_spec_variants_roundtrip() {
    for spec in [
        ModelSpec::ResNet18 {
            width: 0.5,
            input: 16,
        },
        ModelSpec::Vgg11 {
            width: 1.0,
            input: 32,
        },
        ModelSpec::SmallCnn { width: 8, input: 8 },
    ] {
        let back: ModelSpec =
            serde_json::from_str(&serde_json::to_string(&spec).expect("ser")).expect("de");
        assert_eq!(spec, back);
    }
}
