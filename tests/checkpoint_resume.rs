//! Resume-determinism net: a federated run killed at a round boundary and
//! resumed from its checkpoint must reproduce the *uninterrupted* run's
//! final trace byte for byte — accuracy history, final parameters, and the
//! full deterministic ledger projection (analytic FLOPs, simulated time,
//! measured payload bytes, timeline).
//!
//! "Kill" is emulated with `RunOptions::halt_after`, which stops the
//! server right after the due checkpoint is saved — exactly the state a
//! SIGKILL between rounds would leave behind (checkpoints are written
//! atomically).

use fedtiny::{run_fedtiny, run_fedtiny_with, FedTinyConfig, FedTinyRunOptions};
use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, run_with, CheckpointSpec, Codec, CostLedger, DeviceProfile,
    ExperimentEnv, InProcess, ModelSpec, RunOptions, Scheduler, ServerError,
};
use fedtiny_suite::nn::{flat_params, sparse_layout, Model};
use fedtiny_suite::sparse::Mask;
use std::path::PathBuf;

/// A unique temp path per test (the OS temp dir is shared across runs).
fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ft_resume_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}_{}.ckpt", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// The deterministic projection compared byte-for-byte: history bits,
/// final parameter bits, and everything in the ledger except host
/// wall-clock.
fn trace(history: &[f32], model: &dyn Model, ledger: &CostLedger) -> String {
    let f32bits =
        |v: &[f32]| -> Vec<String> { v.iter().map(|x| format!("{:08x}", x.to_bits())).collect() };
    let f64bits =
        |v: &[f64]| -> Vec<String> { v.iter().map(|x| format!("{:016x}", x.to_bits())).collect() };
    format!(
        "history={:?} params={:?} flops={:?} realized={:?} sim={:?} comm={:016x} up={:?} down={:?} \
         extra={:016x} zero={} dropped={} timeline={}",
        f32bits(history),
        f32bits(&flat_params(model)),
        f64bits(ledger.round_flops_history()),
        f64bits(ledger.realized_flops_history()),
        f64bits(ledger.sim_secs_history()),
        ledger.total_comm_bytes().to_bits(),
        f64bits(ledger.payload_up_history()),
        f64bits(ledger.payload_down_history()),
        ledger.extra_flops().to_bits(),
        ledger.zero_progress_rounds(),
        ledger.dropped_updates(),
        ledger.timeline().len(),
    )
}

fn build_env(scheduler: Scheduler, codec: Codec, seed: u64) -> ExperimentEnv {
    let mut env = ExperimentEnv::tiny_for_tests(seed);
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = scheduler;
    env.cfg.codec = codec;
    env
}

/// One uninterrupted run via the classic entry point.
fn run_uninterrupted(scheduler: Scheduler, codec: Codec, seed: u64) -> String {
    let env = build_env(scheduler, codec, seed);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );
    trace(&history, model.as_ref(), &ledger)
}

/// The same run killed after `halt_after` rounds, then resumed from the
/// checkpoint in a *fresh* process-like state (new env, new model, new
/// ledger).
fn run_killed_and_resumed(
    scheduler: Scheduler,
    codec: Codec,
    seed: u64,
    halt_after: usize,
    name: &str,
) -> String {
    let path = temp_ckpt(name);

    // Phase 1: run to the kill point.
    {
        let env = build_env(scheduler, codec, seed);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = InProcess;
        let _ = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
            RunOptions {
                transport: &mut transport,
                checkpoint: Some(CheckpointSpec::every_round(&path)),
                resume: false,
                halt_after: Some(halt_after),
                hook_save: None,
                hook_load: None,
                presence: None,
                metrics: None,
            },
        )
        .expect("halted run");
        assert!(path.exists(), "checkpoint was not written");
    }

    // Phase 2: everything rebuilt from scratch, then resumed.
    let env = build_env(scheduler, codec, seed);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: None,
        },
    )
    .expect("resumed run");
    std::fs::remove_file(&path).ok();
    trace(&history, model.as_ref(), &ledger)
}

#[test]
fn ckpt_synchronous_resume_reproduces_uninterrupted_trace() {
    let full = run_uninterrupted(Scheduler::Synchronous, Codec::MaskCsr, 42);
    let resumed = run_killed_and_resumed(
        Scheduler::Synchronous,
        Codec::MaskCsr,
        42,
        2,
        "sync_maskcsr",
    );
    assert_eq!(full, resumed, "synchronous resume diverged");
}

#[test]
fn ckpt_buffered_resume_reproduces_uninterrupted_trace() {
    // The buffered checkpoint has to carry the whole event-loop state:
    // in-flight raw outcomes, per-device task counters, the virtual clock,
    // and the event budget.
    let sched = Scheduler::Buffered { buffer_k: 2 };
    let full = run_uninterrupted(sched, Codec::Dense, 42);
    let resumed = run_killed_and_resumed(sched, Codec::Dense, 42, 2, "buffered_dense");
    assert_eq!(full, resumed, "buffered resume diverged");
}

#[test]
fn ckpt_deadline_topk_resume_preserves_error_feedback_residuals() {
    // TopK with error feedback makes the per-device residuals part of the
    // run state; dropping them at the kill point would visibly shift every
    // later payload.
    let sched = Scheduler::Deadline { deadline_secs: 2.0 };
    let codec = Codec::TopK {
        k_frac: 0.1,
        error_feedback: true,
    };
    let full = run_uninterrupted(sched, codec, 7);
    let resumed = run_killed_and_resumed(sched, codec, 7, 2, "deadline_topk");
    assert_eq!(full, resumed, "top-k error-feedback resume diverged");
}

#[test]
fn ckpt_halt_at_every_round_boundary_is_exact() {
    // Not just one kill point: every boundary of the 4-round run resumes
    // to the identical trace.
    let full = run_uninterrupted(Scheduler::Synchronous, Codec::Dense, 3);
    for k in 1..4 {
        let resumed = run_killed_and_resumed(
            Scheduler::Synchronous,
            Codec::Dense,
            3,
            k,
            &format!("sync_bound_{k}"),
        );
        assert_eq!(full, resumed, "resume from round {k} diverged");
    }
}

#[test]
fn ckpt_mismatched_run_is_rejected_with_typed_error() {
    let path = temp_ckpt("mismatch");
    // Save a checkpoint from seed 1.
    {
        let env = build_env(Scheduler::Synchronous, Codec::Dense, 1);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = InProcess;
        let _ = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions {
                transport: &mut transport,
                checkpoint: Some(CheckpointSpec::every_round(&path)),
                resume: false,
                halt_after: Some(1),
                hook_save: None,
                hook_load: None,
                presence: None,
                metrics: None,
            },
        )
        .expect("halted run");
    }
    // Resume under seed 2 must be refused, not silently diverge.
    let env = build_env(Scheduler::Synchronous, Codec::Dense, 2);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let err = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: None,
        },
    )
    .expect_err("mismatched checkpoint must be rejected");
    assert!(
        matches!(err, ServerError::Checkpoint(_)),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn ckpt_corrupt_file_is_rejected_not_panicking() {
    let path = temp_ckpt("corrupt");
    std::fs::write(&path, b"FTCK garbage that is not a checkpoint").expect("write");
    let env = build_env(Scheduler::Synchronous, Codec::Dense, 5);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let err = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: None,
        },
    )
    .expect_err("corrupt checkpoint must be rejected");
    assert!(matches!(err, ServerError::Checkpoint(_)));
    std::fs::remove_file(&path).ok();
}

#[test]
fn ckpt_fedtiny_resume_matches_uninterrupted_run() {
    // The full pipeline: selection is recomputed deterministically, the
    // fine-tuning rounds resume from the checkpoint, and the progressive
    // hook's counters ride in the hook-state blob.
    let cfg = FedTinyConfig::tiny_for_tests(0.3);
    let uninterrupted = run_fedtiny(&ExperimentEnv::tiny_for_tests(11), &cfg);

    let path = temp_ckpt("fedtiny");
    let env = ExperimentEnv::tiny_for_tests(11);
    let mut transport = InProcess;
    let halted = run_fedtiny_with(
        &env,
        &cfg,
        FedTinyRunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: false,
            halt_after: Some(2),
            metrics: None,
        },
    )
    .expect("halted fedtiny run");
    assert!(halted.history.len() < uninterrupted.history.len());

    let mut transport = InProcess;
    let resumed = run_fedtiny_with(
        &env,
        &cfg,
        FedTinyRunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            metrics: None,
        },
    )
    .expect("resumed fedtiny run");
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.accuracy.to_bits(), uninterrupted.accuracy.to_bits());
    assert_eq!(resumed.history, uninterrupted.history);
    assert_eq!(resumed.final_density, uninterrupted.final_density);
    assert_eq!(
        resumed.max_round_flops.to_bits(),
        uninterrupted.max_round_flops.to_bits()
    );
    assert_eq!(
        resumed.comm_bytes.to_bits(),
        uninterrupted.comm_bytes.to_bits()
    );
    assert_eq!(
        resumed.payload_comm_bytes.to_bits(),
        uninterrupted.payload_comm_bytes.to_bits()
    );
    assert_eq!(
        resumed.payload_upload_bytes.to_bits(),
        uninterrupted.payload_upload_bytes.to_bits()
    );
    assert_eq!(
        resumed.memory_bytes.to_bits(),
        uninterrupted.memory_bytes.to_bits()
    );
    assert_eq!(
        resumed.extra_flops.to_bits(),
        uninterrupted.extra_flops.to_bits()
    );
}

#[test]
fn ckpt_fedtiny_halt_before_first_eval_returns_nan_not_panic() {
    // FedTinyConfig::paper_default uses eval_every = 10: halting at round
    // 1 means no evaluation has happened yet. The Result-returning API
    // must report that as an empty history with NaN accuracy, not a panic
    // — the checkpoint carries the real state for the resume.
    let mut cfg = FedTinyConfig::tiny_for_tests(0.3);
    cfg.eval_every = 100; // only the final round would evaluate
    let path = temp_ckpt("fedtiny_noeval");
    let env = ExperimentEnv::tiny_for_tests(13);
    let mut transport = InProcess;
    let halted = run_fedtiny_with(
        &env,
        &cfg,
        FedTinyRunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: false,
            halt_after: Some(1),
            metrics: None,
        },
    )
    .expect("halted fedtiny run must not panic");
    assert!(halted.history.is_empty());
    assert!(halted.accuracy.is_nan());

    // Resuming the same config completes normally with a real accuracy.
    let mut transport = InProcess;
    let resumed = run_fedtiny_with(
        &env,
        &cfg,
        FedTinyRunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            metrics: None,
        },
    )
    .expect("resumed fedtiny run");
    std::fs::remove_file(&path).ok();
    assert!(!resumed.history.is_empty());
    assert!(resumed.accuracy.is_finite());
}

#[test]
fn ckpt_changed_hyperparameters_are_rejected() {
    // The fingerprint covers the *full* FlConfig: resuming under a changed
    // batch size (or any other hyperparameter) must refuse, because the
    // remaining rounds' math would silently diverge from both the original
    // and a fresh run.
    let path = temp_ckpt("hyperparam");
    {
        let env = build_env(Scheduler::Synchronous, Codec::Dense, 4);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = InProcess;
        let _ = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
            RunOptions {
                transport: &mut transport,
                checkpoint: Some(CheckpointSpec::every_round(&path)),
                resume: false,
                halt_after: Some(1),
                hook_save: None,
                hook_load: None,
                presence: None,
                metrics: None,
            },
        )
        .expect("halted run");
    }
    let mut env = build_env(Scheduler::Synchronous, Codec::Dense, 4);
    env.cfg.batch_size += 1;
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let err = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: &mut transport,
            checkpoint: Some(CheckpointSpec::every_round(&path)),
            resume: true,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: None,
        },
    )
    .expect_err("changed hyperparameters must refuse to resume");
    assert!(matches!(err, ServerError::Checkpoint(_)));
    assert!(err.to_string().contains("run configuration"));
    std::fs::remove_file(&path).ok();
}
