//! Integration tests spanning the whole workspace: data generation →
//! federated split → selection → training → pruning → evaluation.

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{run_fedtiny, FedTinyConfig, SelectionMode};
use fedtiny_suite::fl::{evaluate, ExperimentEnv, FlConfig, ModelSpec};
use fedtiny_suite::pruning::{run_baseline, BaselineMethod};

fn small_env(seed: u64) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 10,
        test_per_class: 6,
        resolution: 8,
        channels: 3,
        seed,
    };
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.rounds = 6;
    cfg.devices = 3;
    cfg.seed = seed;
    ExperimentEnv::new(synth, cfg)
}

#[test]
fn fedtiny_learns_above_chance_on_resnet() {
    let env = small_env(100);
    let mut cfg = FedTinyConfig::tiny_for_tests(0.3);
    cfg.model = ModelSpec::resnet_test();
    let result = run_fedtiny(&env, &cfg);
    // 10 classes → chance is 0.1; with 6 rounds on the easy synthetic task
    // the sparse model must clear it.
    assert!(
        result.accuracy > 0.15,
        "accuracy {} not above chance",
        result.accuracy
    );
    assert!(result.final_density <= 0.31);
}

#[test]
fn every_method_produces_consistent_cost_ordering() {
    let env = small_env(101);
    let spec = ModelSpec::small_cnn_test();
    let dense = run_baseline(&env, &spec, BaselineMethod::FedAvgDense, 1.0, 0);
    let synflow = run_baseline(&env, &spec, BaselineMethod::SynFlow, 0.1, 0);
    let prunefl = run_baseline(&env, &spec, BaselineMethod::PruneFl, 0.1, 0);
    let lottery = run_baseline(&env, &spec, BaselineMethod::LotteryFl, 0.1, 0);

    // Table I's qualitative cost structure.
    assert!(synflow.max_round_flops < dense.max_round_flops);
    assert!(
        synflow.max_round_flops < prunefl.max_round_flops,
        "PruneFL trains denser intermediates"
    );
    assert!(
        prunefl.memory_bytes > synflow.memory_bytes,
        "PruneFL stores dense scores"
    );
    assert!((lottery.max_round_flops - dense.max_round_flops).abs() < 1e-3 * dense.max_round_flops);
    assert_eq!(lottery.memory_bytes, dense.memory_bytes);
}

#[test]
fn fedtiny_cheaper_than_prunefl_and_better_memory() {
    let env = small_env(102);
    let spec = ModelSpec::small_cnn_test();
    let mut cfg = FedTinyConfig::tiny_for_tests(0.1);
    cfg.model = spec;
    let ft = run_fedtiny(&env, &cfg);
    let prunefl = run_baseline(&env, &spec, BaselineMethod::PruneFl, 0.1, 0);
    assert!(ft.max_round_flops < prunefl.max_round_flops);
    assert!(ft.memory_bytes < prunefl.memory_bytes);
}

#[test]
fn run_is_reproducible_end_to_end() {
    let cfg = FedTinyConfig::tiny_for_tests(0.2);
    let a = run_fedtiny(&small_env(103), &cfg);
    let b = run_fedtiny(&small_env(103), &cfg);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.history, b.history);
    assert_eq!(a.comm_bytes, b.comm_bytes);
    assert_eq!(a.max_round_flops, b.max_round_flops);
}

#[test]
fn selection_modes_and_progressive_compose() {
    let env = small_env(104);
    for selection in [SelectionMode::AdaptiveBn, SelectionMode::Vanilla] {
        for progressive in [true, false] {
            let mut cfg = FedTinyConfig::tiny_for_tests(0.25);
            cfg.selection = selection;
            if !progressive {
                cfg.progressive = None;
            }
            let r = run_fedtiny(&env, &cfg);
            assert!(
                r.final_density <= 0.26,
                "{selection:?}/{progressive}: density {}",
                r.final_density
            );
        }
    }
}

#[test]
fn dense_fedavg_is_the_accuracy_upper_bound_given_budget() {
    // Not a strict invariant per-seed, but at trivial sparsity FedTiny
    // should land in the neighbourhood of dense FedAvg.
    let env = small_env(105);
    let spec = ModelSpec::small_cnn_test();
    let dense = run_baseline(&env, &spec, BaselineMethod::FedAvgDense, 1.0, 0);
    let mut cfg = FedTinyConfig::tiny_for_tests(0.9);
    cfg.model = spec;
    let ft = run_fedtiny(&env, &cfg);
    assert!(
        ft.accuracy >= dense.accuracy - 0.3,
        "{} vs {}",
        ft.accuracy,
        dense.accuracy
    );
}

#[test]
fn evaluation_is_stable_across_calls() {
    let env = small_env(106);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let a1 = evaluate(model.as_mut(), &env.test);
    let a2 = evaluate(model.as_mut(), &env.test);
    assert_eq!(a1, a2, "Eval mode must not mutate the model");
}

#[test]
fn all_dataset_profiles_work_end_to_end() {
    for profile in [
        DatasetProfile::Cifar10,
        DatasetProfile::Cifar100,
        DatasetProfile::Cinic10,
        DatasetProfile::Svhn,
    ] {
        let synth = SynthConfig::tiny_for_tests(profile, 9);
        let mut cfg = FlConfig::tiny_for_tests();
        cfg.rounds = 2;
        let env = ExperimentEnv::new(synth, cfg);
        let mut ft = FedTinyConfig::tiny_for_tests(0.3);
        ft.eval_every = 1;
        let r = run_fedtiny(&env, &ft);
        assert!(
            (0.0..=1.0).contains(&r.accuracy),
            "{profile:?}: accuracy {}",
            r.accuracy
        );
    }
}
