//! Failure-injection tests: pathological-but-possible conditions the
//! federated pruning stack must survive (extreme skew, degenerate devices,
//! single-weight layers, empty candidate diversity).

use fedtiny_suite::data::{dirichlet_partition, Dataset, DatasetProfile, SynthConfig};
use fedtiny_suite::fedtiny::{run_fedtiny, FedTinyConfig};
use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, CostLedger, DeviceProfile, ExperimentEnv, FlConfig, ModelSpec,
    Scheduler,
};
use fedtiny_suite::nn::{flat_params, sparse_layout};
use fedtiny_suite::pruning::{run_baseline, BaselineMethod};
use fedtiny_suite::sparse::Mask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn survives_extreme_label_skew() {
    // α = 0.01: most devices see essentially one class.
    let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 200);
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.alpha = 0.01;
    cfg.rounds = 3;
    let env = ExperimentEnv::new(synth, cfg);
    assert!(env.parts.iter().all(|p| !p.is_empty()));
    let r = run_fedtiny(&env, &FedTinyConfig::tiny_for_tests(0.3));
    assert!((0.0..=1.0).contains(&r.accuracy));
}

#[test]
fn survives_single_sample_devices() {
    // Hand-build an environment where one device owns a single sample.
    let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 201);
    let (train, test) = synth.generate();
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.devices = 3;
    cfg.rounds = 2;
    let mut env = ExperimentEnv::new(synth, cfg);
    // Device 0 gets exactly one sample; the rest share everything else.
    let n = train.len();
    env.parts = vec![
        train.subset(&[0]),
        train.subset(&(1..n / 2).collect::<Vec<_>>()),
        train.subset(&(n / 2..n).collect::<Vec<_>>()),
    ];
    env.test = test;
    let r = run_fedtiny(&env, &FedTinyConfig::tiny_for_tests(0.3));
    assert!((0.0..=1.0).contains(&r.accuracy));
}

#[test]
fn extreme_density_one_weight_layers() {
    // A density so low that ceil() leaves one weight per layer.
    let env = ExperimentEnv::tiny_for_tests(202);
    let mut cfg = FedTinyConfig::tiny_for_tests(0.001);
    cfg.pool_size = 2;
    let r = run_fedtiny(&env, &cfg);
    assert!(
        r.final_density > 0.0,
        "mask must keep at least one weight per layer"
    );
    assert!((0.0..=1.0).contains(&r.accuracy));
}

#[test]
fn baselines_survive_extreme_density() {
    let env = ExperimentEnv::tiny_for_tests(203);
    let spec = ModelSpec::small_cnn_test();
    for method in [
        BaselineMethod::SynFlow,
        BaselineMethod::FlPqsu,
        BaselineMethod::FedDst,
    ] {
        let r = run_baseline(&env, &spec, method, 0.002, 0);
        assert!((0.0..=1.0).contains(&r.accuracy), "{method:?}");
    }
}

#[test]
fn dirichlet_handles_missing_classes() {
    // Labels covering only 2 of 10 declared classes.
    let mut rng = ChaCha8Rng::seed_from_u64(204);
    let labels: Vec<usize> = (0..40).map(|i| if i % 2 == 0 { 3 } else { 7 }).collect();
    let parts = dirichlet_partition(&mut rng, &labels, 10, 4, 0.5);
    let all: usize = parts.iter().map(Vec::len).sum();
    assert_eq!(all, 40);
    assert!(parts.iter().all(|p| !p.is_empty()));
}

#[test]
fn dataset_of_one_class_trains() {
    // Degenerate: a device whose data is a single class must still train
    // (loss well-defined, accuracy equals that class's share of the test set).
    let images = vec![0.5f32; 8 * 3 * 64];
    let labels = vec![2usize; 8];
    let part = Dataset::new(images, labels, 3, 8, 8, 10);
    let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 205);
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.devices = 2;
    cfg.rounds = 2;
    let mut env = ExperimentEnv::new(synth, cfg);
    env.parts[0] = part;
    let r = run_fedtiny(&env, &FedTinyConfig::tiny_for_tests(0.4));
    assert!((0.0..=1.0).contains(&r.accuracy));
}

#[test]
fn zero_round_training_still_reports() {
    let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 206);
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.rounds = 0;
    let env = ExperimentEnv::new(synth, cfg);
    let r = run_fedtiny(&env, &FedTinyConfig::tiny_for_tests(0.3));
    // No rounds: evaluation of the selected-but-untrained model.
    assert!(!r.history.is_empty());
    assert_eq!(r.max_round_flops, 0.0);
}

/// Runs plain masked FedAvg on `env` and returns (history, ledger, model
/// params after the run) — the fixture for the dropout scenarios below.
fn run_rounds(env: &ExperimentEnv) -> (Vec<f32>, CostLedger, Vec<f32>) {
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        env,
        0,
        &mut ledger,
        &mut no_hook(),
    );
    (history, ledger, flat_params(model.as_ref()))
}

#[test]
fn device_dropping_every_round_is_survivable() {
    // Device 0's radio never delivers an update (dropout = 1.0); the rest
    // of the fleet must keep making progress under every policy.
    for scheduler in [
        Scheduler::Synchronous,
        Scheduler::Deadline {
            deadline_secs: 1.0e6,
        },
        Scheduler::Buffered { buffer_k: 2 },
    ] {
        let mut env = ExperimentEnv::tiny_for_tests(210);
        let mut fleet = DeviceProfile::fleet_uniform(env.num_devices());
        fleet[0].dropout = 1.0;
        env.fleet = fleet;
        env.scheduler = scheduler;
        let (history, ledger, params) = run_rounds(&env);
        let acc = *history.last().expect("nonempty");
        assert!((0.0..=1.0).contains(&acc), "{scheduler:?}");
        assert!(params.iter().all(|v| v.is_finite()), "{scheduler:?}");
        // Every one of device 0's finished tasks was discarded.
        assert!(
            ledger
                .timeline()
                .iter()
                .filter(|e| e.device == 0)
                .all(|e| !e.applied),
            "{scheduler:?}: a device-0 update slipped through"
        );
        assert!(ledger.dropped_updates() > 0, "{scheduler:?}");
        assert_eq!(ledger.zero_progress_rounds(), 0, "{scheduler:?}");
    }
}

#[test]
fn all_but_one_dropping_at_deadline_still_progresses() {
    // Every device except the first is 100x too slow for the deadline: each
    // round aggregates exactly one update.
    let mut env = ExperimentEnv::tiny_for_tests(211);
    let reference = DeviceProfile::uniform();
    let mut straggler = reference;
    straggler.flops_per_sec /= 100.0;
    straggler.bytes_per_sec /= 100.0;
    let mut fleet = vec![straggler; env.num_devices()];
    fleet[0] = reference;
    env.fleet = fleet;
    // Strictly between the tiers: generous for the reference device,
    // hopeless for the stragglers.
    let deadline_secs = {
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fedtiny_suite::fl::fleet_spread_deadline(&env, &model.arch(), &densities)
    };
    env.scheduler = Scheduler::Deadline { deadline_secs };
    let (history, ledger, params) = run_rounds(&env);
    assert!((0.0..=1.0).contains(history.last().expect("nonempty")));
    assert!(params.iter().all(|v| v.is_finite()));
    assert_eq!(ledger.zero_progress_rounds(), 0);
    for round in 0..env.cfg.rounds {
        let applied = ledger
            .timeline()
            .iter()
            .filter(|e| e.round == round && e.applied)
            .count();
        assert_eq!(applied, 1, "round {round} should keep only device 0");
    }
    // The deadline caps every round's simulated span.
    assert!(ledger.max_sim_round_secs() <= deadline_secs + 1e-9);
}

#[test]
fn empty_surviving_cohort_records_zero_progress() {
    // A deadline of zero simulated seconds: nobody ever arrives. The run
    // must not panic or NaN — it records zero-progress rounds and leaves
    // the global untouched.
    let mut env = ExperimentEnv::tiny_for_tests(212);
    env.scheduler = Scheduler::Deadline { deadline_secs: 0.0 };
    let before = {
        let model = env.build_model(&ModelSpec::small_cnn_test());
        flat_params(model.as_ref())
    };
    let (history, ledger, params) = run_rounds(&env);
    assert_eq!(ledger.zero_progress_rounds(), env.cfg.rounds);
    assert_eq!(ledger.rounds(), env.cfg.rounds);
    assert_eq!(params, before, "global model moved with no survivors");
    assert!(
        params.iter().all(|v| v.is_finite()),
        "NaN leaked into the global"
    );
    assert!(history.iter().all(|a| (0.0..=1.0).contains(a)));
    assert!(ledger.timeline().iter().all(|e| !e.applied));
}

#[test]
fn duplicate_candidates_in_pool_are_harmless() {
    use fedtiny_suite::fedtiny::{adaptive_bn_selection, generate_candidate_pool, SelectionConfig};
    let env = ExperimentEnv::tiny_for_tests(207);
    let model = env.build_model(&ModelSpec::small_cnn_test());
    let cfg = SelectionConfig {
        d_target: 0.5,
        pool_size: 1,
        noise_spread: 0.0,
        seed: 0,
    };
    let one = generate_candidate_pool(model.as_ref(), &cfg);
    // Duplicate the single candidate three times.
    let pool = vec![one[0].clone(), one[0].clone(), one[0].clone()];
    let out = adaptive_bn_selection(model.as_ref(), &env, &pool);
    assert!(out.selected < 3);
    let l0 = out.candidate_losses[0];
    assert!(out.candidate_losses.iter().all(|&l| (l - l0).abs() < 1e-5));
}
