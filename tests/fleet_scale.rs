//! Fleet-scale loopback net: one multiplexed server thread against one
//! lockstep client thread serving the whole fleet's sockets, bit-identical
//! to the in-process twin of the same seed.
//!
//! The point is the *dataplane shape*, not the model: with the event-driven
//! Collect loop, a single server thread owns every device socket, so the
//! fleet size is bounded by file descriptors — not OS threads. The CI
//! `fleet-scale` job runs this at 10 000 devices (`FT_FLEET_DEVICES=10000`
//! under `ulimit -n 65536`); the default stays small enough for any
//! developer machine.

use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, run_tcp_devices, run_with, Codec, CostLedger, ExperimentEnv,
    FlConfig, ModelSpec, RunOptions, TcpTransport,
};
use fedtiny_suite::nn::{apply_mask, flat_params, sparse_layout};
use fedtiny_suite::sparse::Mask;
use ft_data::{DatasetProfile, SynthConfig};
use std::net::TcpListener;

/// Fleet size: `FT_FLEET_DEVICES` (CI scale-out) or a laptop default.
fn fleet_devices() -> usize {
    std::env::var("FT_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// An environment sized for `devices`: the synthetic dataset grows with
/// the fleet (the Dirichlet split needs at least one sample per device),
/// everything else stays tiny so 10k devices is sockets, not FLOPs.
fn scale_env(devices: usize, seed: u64) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: (devices / 10 + 2).max(8),
        test_per_class: 2,
        resolution: 8,
        channels: 3,
        seed,
    };
    let mut cfg = FlConfig::tiny_for_tests();
    cfg.devices = devices;
    cfg.rounds = 2;
    cfg.seed = seed;
    // Full participation is what lets one client thread serve every socket
    // in lockstep (run_tcp_devices refuses anything else), and MaskCsr
    // exercises the zero-copy sparse decode at scale.
    cfg.participation = 1.0;
    cfg.codec = Codec::MaskCsr;
    ExperimentEnv::new(synth, cfg)
}

/// Half-prunes the first layer so MaskCsr frames are genuinely sparse.
fn initial_mask(env: &ExperimentEnv) -> Mask {
    let model = env.build_model(&ModelSpec::small_cnn_test());
    let layout = sparse_layout(model.as_ref());
    let mut mask = Mask::ones(&layout);
    for i in 0..layout.layer(0).len {
        if i % 2 == 0 {
            mask.set(0, i, false);
        }
    }
    mask
}

/// Deterministic run projection (history, params, ledger axes), in bits.
type Trace = (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>);

fn project(history: &[f32], params: &[f32], ledger: &CostLedger) -> Trace {
    (
        history.iter().map(|v| v.to_bits()).collect(),
        params.iter().map(|v| v.to_bits()).collect(),
        ledger
            .payload_up_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        ledger
            .payload_down_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

fn run_in_process(devices: usize, seed: u64) -> Trace {
    let env = scale_env(devices, seed);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = initial_mask(&env);
    apply_mask(model.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );
    project(&history, &flat_params(model.as_ref()), &ledger)
}

fn run_over_tcp(devices: usize, seed: u64) -> Trace {
    let env = scale_env(devices, seed);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let client = std::thread::spawn(move || {
        let client_env = scale_env(devices, seed);
        run_tcp_devices(addr, 0..devices, &client_env, &ModelSpec::small_cnn_test())
            .unwrap_or_else(|e| panic!("client fleet failed: {e}"));
    });
    let mut transport = TcpTransport::accept_fleet(&listener, devices).expect("fleet connects");
    assert_eq!(transport.devices(), devices);

    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = initial_mask(&env);
    apply_mask(model.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("tcp fleet run");
    client.join().expect("client thread");
    project(&history, &flat_params(model.as_ref()), &ledger)
}

#[test]
fn fleet_scale_tcp_matches_in_process_bit_exactly() {
    let devices = fleet_devices();
    let tcp = run_over_tcp(devices, 23);
    let local = run_in_process(devices, 23);
    assert_eq!(
        tcp, local,
        "{devices}-device multiplexed TCP fleet diverged from in-process"
    );
}

#[test]
fn run_tcp_devices_refuses_partial_participation() {
    let mut env = scale_env(4, 7);
    env.cfg.participation = 0.5;
    // No server needed: the lockstep check fires before any connect.
    let err = run_tcp_devices("127.0.0.1:1", 0..4, &env, &ModelSpec::small_cnn_test())
        .expect_err("lockstep client must refuse partial participation");
    assert!(
        err.to_string().contains("participation"),
        "unexpected error: {err}"
    );
}
