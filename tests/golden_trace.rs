//! Golden-trace determinism net for the fleet simulation and the wire
//! byte-accounting.
//!
//! The committed traces pin the bit-exact accuracy history, simulated-time
//! ledger, and measured payload bytes of:
//!
//! - `tests/golden/synchronous_trace.txt` — a `Synchronous` run on a mixed
//!   fleet under the `Dense` codec;
//! - `tests/golden/deadline_maskcsr_trace.txt` — a `Deadline` run on the
//!   same fleet under `MaskCsr` with a half-pruned first layer, so the
//!   values-only sparse upload path (and its byte accounting) is pinned
//!   bit-for-bit.
//!
//! Any refactor of the round loop, the aggregation path, the RNG
//! derivation, the time model, or the codecs that changes observable
//! behavior shows up as a readable diff here.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```bash
//! FT_BLESS=1 cargo test --test golden_trace
//! ```

use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, run_with, Codec, CostLedger, DeviceProfile, ExperimentEnv,
    ModelSpec, RunOptions, Scheduler, SimTime,
};
use fedtiny_suite::nn::{apply_mask, sparse_layout};
use fedtiny_suite::sparse::Mask;

const SYNCHRONOUS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/synchronous_trace.txt"
);
const DEADLINE_MASKCSR_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/deadline_maskcsr_trace.txt"
);

/// Renders one run's trace: one line per round with accuracy, simulated
/// makespan, and measured payload bytes (display value + exact bits), then
/// a footer with run totals. Bits make the comparison exact; display values
/// make the diff human-readable.
fn render_trace(header: &str, history: &[f32], ledger: &CostLedger) -> String {
    let mut out = String::from(header);
    for (round, acc) in history.iter().enumerate() {
        let sim = ledger.sim_secs_history()[round];
        let flops = ledger.round_flops_history()[round];
        let up = ledger.payload_up_history()[round];
        let down = ledger.payload_down_history()[round];
        out.push_str(&format!(
            "round {round}: acc={acc:.4} acc_bits={:08x} sim_secs={sim:.6} sim_bits={:016x} \
             flops_bits={:016x} up_bytes={up:.0} up_bits={:016x} down_bytes={down:.0} down_bits={:016x}\n",
            acc.to_bits(),
            sim.to_bits(),
            flops.to_bits(),
            up.to_bits(),
            down.to_bits(),
        ));
    }
    out.push_str(&format!(
        "total: sim_makespan_bits={:016x} comm_bits={:016x} payload_bits={:016x} upload_bits={:016x} \
         zero_progress={} dropped={} timeline_events={}\n",
        ledger.sim_makespan_secs().to_bits(),
        ledger.total_comm_bytes().to_bits(),
        ledger.total_payload_bytes().to_bits(),
        ledger.total_payload_upload_bytes().to_bits(),
        ledger.zero_progress_rounds(),
        ledger.dropped_updates(),
        ledger.timeline().len(),
    ));
    out
}

fn compare_or_bless(path: &str, got: &str) {
    if std::env::var("FT_BLESS").is_ok() {
        std::fs::write(path, got).expect("write golden trace");
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!("missing {path} — run FT_BLESS=1 cargo test --test golden_trace")
    });
    assert_eq!(
        got, &want,
        "golden trace {path} drifted; if intentional, regenerate with \
         FT_BLESS=1 cargo test --test golden_trace"
    );
}

fn synchronous_trace() -> String {
    let mut env = ExperimentEnv::tiny_for_tests(42);
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = Scheduler::Synchronous;
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );
    render_trace(
        "# Golden trace: Synchronous scheduler, mixed fleet, tiny env (seed 42),\n\
         # small_cnn_test, Dense codec, eval_every = 1.\n\
         # Regenerate: FT_BLESS=1 cargo test --test golden_trace\n",
        &history,
        &ledger,
    )
}

fn deadline_maskcsr_trace() -> String {
    let mut env = ExperimentEnv::tiny_for_tests(42);
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = Scheduler::Deadline { deadline_secs: 2.0 };
    env.cfg.codec = Codec::MaskCsr;
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let layout = sparse_layout(model.as_ref());
    let mut mask = Mask::ones(&layout);
    // Half-prune the first layer so the sparse values-only upload (and its
    // byte accounting) is genuinely exercised, not just dense-with-headers.
    for i in 0..layout.layer(0).len {
        if i % 2 == 0 {
            mask.set(0, i, false);
        }
    }
    apply_mask(model.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );
    render_trace(
        "# Golden trace: Deadline(2.0s) scheduler, mixed fleet, tiny env (seed 42),\n\
         # small_cnn_test with layer 0 half-pruned, MaskCsr codec, eval_every = 1.\n\
         # Pins the measured values-only sparse byte accounting bit-for-bit.\n\
         # Regenerate: FT_BLESS=1 cargo test --test golden_trace\n",
        &history,
        &ledger,
    )
}

#[test]
fn sim_golden_trace_synchronous_matches_committed() {
    compare_or_bless(SYNCHRONOUS_PATH, &synchronous_trace());
}

/// The `SimTime` transport — every update serialized into a real frame and
/// parsed back — reproduces the committed `InProcess` golden trace byte for
/// byte. This is the wire layer's strongest guarantee: crossing the byte
/// boundary changes nothing, so the traces stay pinned to the SAME files.
#[test]
fn sim_golden_trace_synchronous_identical_over_byte_boundary() {
    if std::env::var("FT_BLESS").is_ok() {
        return; // blessing is the InProcess test's job
    }
    let mut env = ExperimentEnv::tiny_for_tests(42);
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = Scheduler::Synchronous;
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = SimTime;
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("sim_time run");
    let got = render_trace(
        "# Golden trace: Synchronous scheduler, mixed fleet, tiny env (seed 42),\n\
         # small_cnn_test, Dense codec, eval_every = 1.\n\
         # Regenerate: FT_BLESS=1 cargo test --test golden_trace\n",
        &history,
        &ledger,
    );
    let want = std::fs::read_to_string(SYNCHRONOUS_PATH).expect("committed golden trace");
    assert_eq!(
        got, want,
        "SimTime transport diverged from the committed InProcess golden trace"
    );
}

#[test]
fn sim_golden_trace_deadline_maskcsr_matches_committed() {
    compare_or_bless(DEADLINE_MASKCSR_PATH, &deadline_maskcsr_trace());
}

/// The same scenario is bit-identical across parallel and sequential device
/// execution — the golden files pin two of them, this pins every scheduler
/// policy against itself (their ledgers embed jitter, staleness, and drop
/// decisions, so equality here is a strong invariant).
#[test]
fn sim_every_policy_parallel_equals_sequential_trace() {
    for scheduler in [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs: 2.0 },
        Scheduler::Buffered { buffer_k: 2 },
    ] {
        let run = |parallel: bool| -> (Vec<f32>, Vec<String>, usize) {
            let mut env = ExperimentEnv::tiny_for_tests(42);
            env.cfg.parallel = parallel;
            env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
            env.scheduler = scheduler;
            let mut model = env.build_model(&ModelSpec::small_cnn_test());
            let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
            let mut ledger = CostLedger::new();
            let history = run_federated_rounds(
                model.as_mut(),
                &mut mask,
                &env,
                1,
                &mut ledger,
                &mut no_hook(),
            );
            let sim_bits: Vec<String> = ledger
                .sim_secs_history()
                .iter()
                .chain(ledger.payload_up_history().iter())
                .map(|s| format!("{:016x}", s.to_bits()))
                .collect();
            (history, sim_bits, ledger.dropped_updates())
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a, b, "{scheduler:?}: parallel/sequential divergence");
    }
}
