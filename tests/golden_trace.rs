//! Golden-trace determinism net for the fleet simulation.
//!
//! The committed trace (`tests/golden/synchronous_trace.txt`) pins the
//! bit-exact accuracy history and simulated-time ledger of a `Synchronous`
//! run on a mixed fleet. Any refactor of the round loop, the aggregation
//! path, the RNG derivation, or the time model that changes observable
//! behavior shows up as a readable diff here.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```bash
//! FT_BLESS=1 cargo test --test golden_trace
//! ```

use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, CostLedger, DeviceProfile, ExperimentEnv, ModelSpec, Scheduler,
};
use fedtiny_suite::nn::sparse_layout;
use fedtiny_suite::sparse::Mask;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/synchronous_trace.txt"
);

/// Runs the pinned scenario and renders its trace: one line per round with
/// accuracy and simulated makespan (display value + exact bits), then a
/// footer with run totals. Bits make the comparison exact; display values
/// make the diff human-readable.
fn synchronous_trace() -> String {
    let mut env = ExperimentEnv::tiny_for_tests(42);
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = Scheduler::Synchronous;
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );

    let mut out = String::from(
        "# Golden trace: Synchronous scheduler, mixed fleet, tiny env (seed 42),\n\
         # small_cnn_test, eval_every = 1. Regenerate: FT_BLESS=1 cargo test --test golden_trace\n",
    );
    for (round, acc) in history.iter().enumerate() {
        let sim = ledger.sim_secs_history()[round];
        let flops = ledger.round_flops_history()[round];
        out.push_str(&format!(
            "round {round}: acc={acc:.4} acc_bits={:08x} sim_secs={sim:.6} sim_bits={:016x} flops_bits={:016x}\n",
            acc.to_bits(),
            sim.to_bits(),
            flops.to_bits(),
        ));
    }
    out.push_str(&format!(
        "total: sim_makespan_bits={:016x} comm_bits={:016x} zero_progress={} dropped={} timeline_events={}\n",
        ledger.sim_makespan_secs().to_bits(),
        ledger.total_comm_bytes().to_bits(),
        ledger.zero_progress_rounds(),
        ledger.dropped_updates(),
        ledger.timeline().len(),
    ));
    out
}

#[test]
fn sim_golden_trace_synchronous_matches_committed() {
    let got = synchronous_trace();
    if std::env::var("FT_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden trace");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing tests/golden/synchronous_trace.txt — run FT_BLESS=1 cargo test --test golden_trace",
    );
    assert_eq!(
        got, want,
        "synchronous golden trace drifted; if intentional, regenerate with \
         FT_BLESS=1 cargo test --test golden_trace"
    );
}

/// The same scenario is bit-identical across parallel and sequential device
/// execution — the golden file pins one of them, this pins the other two
/// scheduler policies against themselves (their ledgers embed jitter,
/// staleness, and drop decisions, so equality here is a strong invariant).
#[test]
fn sim_every_policy_parallel_equals_sequential_trace() {
    for scheduler in [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs: 2.0 },
        Scheduler::Buffered { buffer_k: 2 },
    ] {
        let run = |parallel: bool| -> (Vec<f32>, Vec<String>, usize) {
            let mut env = ExperimentEnv::tiny_for_tests(42);
            env.cfg.parallel = parallel;
            env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
            env.scheduler = scheduler;
            let mut model = env.build_model(&ModelSpec::small_cnn_test());
            let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
            let mut ledger = CostLedger::new();
            let history = run_federated_rounds(
                model.as_mut(),
                &mut mask,
                &env,
                1,
                &mut ledger,
                &mut no_hook(),
            );
            let sim_bits: Vec<String> = ledger
                .sim_secs_history()
                .iter()
                .map(|s| format!("{:016x}", s.to_bits()))
                .collect();
            (history, sim_bits, ledger.dropped_updates())
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a, b, "{scheduler:?}: parallel/sequential divergence");
    }
}
