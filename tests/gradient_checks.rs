//! Whole-model gradient checks: finite-difference validation of the manual
//! backprop through every architecture, including the residual paths of
//! ResNet18 and the pooling/classifier stack of VGG11.

use fedtiny_suite::nn::loss::softmax_cross_entropy;
use fedtiny_suite::nn::models::{ResNet18, SmallCnn, Vgg11};
use fedtiny_suite::nn::{Mode, Model};
use fedtiny_suite::tensor::{normal, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Checks `d loss / d w` for a handful of parameters of `model` against
/// central finite differences on a fixed batch.
fn check_model_gradients(model: &mut dyn Model, in_c: usize, size: usize, classes: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let x = normal(&mut rng, &[2, in_c, size, size], 0.0, 1.0);
    let y: Vec<usize> = (0..2).map(|i| i % classes).collect();

    // Batch-statistics BN makes a width-scaled deep net's loss chaotic in
    // any single weight (one weight shifts a whole channel's batch variance,
    // which rescales every activation), so finite differences cannot
    // converge in f32. Eval-mode BN is a smooth function of the weights and
    // still exercises every backward path (conv transposes, residual adds,
    // pooling, the classifier); the batch-statistics backward formula has
    // its own tight per-layer check in ft-nn.
    let logits = model.forward(&x, Mode::Eval);
    let (_, grad) = softmax_cross_entropy(&logits, &y);
    model.backward(&grad);
    let analytic: Vec<Vec<f32>> = model
        .params()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect();
    model.zero_grad();

    let loss_at = |model: &mut dyn Model| -> f32 {
        let logits = model.forward(&x, Mode::Eval);
        let (loss, _) = softmax_cross_entropy(&logits, &y);
        loss
    };

    let eps = 1e-3;
    let n_params = model.params().len();
    // Probe the first weight of every 3rd parameter tensor plus one interior
    // coordinate — cheap but covers every layer type.
    for pi in (0..n_params).step_by(3) {
        for &ci in &[0usize, 1] {
            let len = model.params()[pi].len();
            if ci >= len {
                continue;
            }
            let orig = model.params()[pi].data.data()[ci];
            model.params_mut()[pi].data.data_mut()[ci] = orig + eps;
            let lp = loss_at(model);
            model.params_mut()[pi].data.data_mut()[ci] = orig - eps;
            let lm = loss_at(model);
            model.params_mut()[pi].data.data_mut()[ci] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic[pi][ci];
            assert!(
                (got - numeric).abs() < 1e-2 + 0.1 * numeric.abs(),
                "param {pi}[{ci}]: analytic {got} vs numeric {numeric}"
            );
        }
    }
    // The batch gradient must be nonzero somewhere.
    let total: f32 = analytic
        .iter()
        .flat_map(|g| g.iter())
        .map(|g| g.abs())
        .sum();
    assert!(total > 0.0, "all-zero gradients");
}

#[test]
fn small_cnn_gradients_match_finite_differences() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut model = SmallCnn::new(&mut rng, 4, 4, 3, 8);
    check_model_gradients(&mut model, 3, 8, 4);
}

#[test]
fn resnet18_gradients_match_finite_differences() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut model = ResNet18::new(&mut rng, 0.125, 4, 3, 8);
    check_model_gradients(&mut model, 3, 8, 4);
}

#[test]
fn vgg11_gradients_match_finite_differences() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = Vgg11::new(&mut rng, 0.125, 4, 3, 8);
    check_model_gradients(&mut model, 3, 8, 4);
}

#[test]
fn zero_grad_clears_every_accumulator() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut model = ResNet18::new(&mut rng, 0.125, 10, 3, 8);
    let x = normal(&mut rng, &[1, 3, 8, 8], 0.0, 1.0);
    let logits = model.forward(&x, Mode::Train);
    model.backward(&Tensor::ones(logits.shape()));
    assert!(model.params().iter().any(|p| p.grad.max_abs() > 0.0));
    model.zero_grad();
    assert!(model.params().iter().all(|p| p.grad.max_abs() == 0.0));
}

#[test]
fn bn_momentum_override_reaches_every_layer() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for mut model in [
        Box::new(ResNet18::new(&mut rng, 0.125, 10, 3, 8)) as Box<dyn Model>,
        Box::new(Vgg11::new(&mut rng, 0.125, 10, 3, 8)) as Box<dyn Model>,
        Box::new(SmallCnn::new(&mut rng, 4, 10, 3, 8)) as Box<dyn Model>,
    ] {
        // momentum = 1.0 → one forward pass replaces all running means.
        model.set_bn_momentum(1.0);
        let x = normal(&mut rng, &[4, 3, 8, 8], 3.0, 1.0);
        let _ = model.forward(&x, Mode::Train);
        for (i, s) in model.bn_stats().iter().enumerate() {
            assert!(
                s.mean.iter().any(|&m| m != 0.0),
                "bn layer {i} mean untouched by adaptation"
            );
        }
    }
}

#[test]
fn gradients_accumulate_across_batches() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mut model = SmallCnn::new(&mut rng, 4, 4, 3, 8);
    let x = normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
    let run = |m: &mut SmallCnn| {
        let logits = m.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        m.backward(&grad);
    };
    run(&mut model);
    let once = model.params()[0].grad.data().to_vec();
    run(&mut model);
    let twice = model.params()[0].grad.data().to_vec();
    // BN stats shift slightly between passes, so allow a small tolerance.
    for (a, b) in once.iter().zip(twice.iter()) {
        assert!((b - 2.0 * a).abs() < 1e-2 + 0.35 * a.abs(), "{b} vs 2*{a}");
    }
}
