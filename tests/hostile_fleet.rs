//! Hostile-fleet net: Byzantine devices, churn, and robust aggregation
//! under the wire-level fault-injection harness.
//!
//! Three fronts, all deterministic:
//!
//! - **Golden adversarial traces** — a seeded 10-device fleet with two
//!   Byzantine members (a sign-flipping poisoner and a garbage/replay
//!   alternator) plus one handshake-botching device, pinned byte-for-byte
//!   under `TrimmedMean` (`tests/golden/byzantine_trimmed_mean_trace.txt`)
//!   and under plain `FedAvg`
//!   (`tests/golden/byzantine_fedavg_trace.txt`), each with its quarantine
//!   footer. `TrimmedMean` must land within one accuracy point of the
//!   honest baseline while `FedAvg` takes at least `FEDAVG_DAMAGE_FLOOR`
//!   of pinned damage. Regenerate after an intentional change with
//!   `FT_BLESS=1 cargo test --test hostile_fleet`.
//! - **TCP ≡ in-process equivalence** — the same hostile fleet over real
//!   loopback sockets (tolerant accept) produces the bit-identical trace
//!   and the identical fault counters as its [`AdversarialTransport`]
//!   twin, and the server finishes every round without a panic.
//! - **Churn** — devices leaving and rejoining (from the live run's
//!   broadcast state) at every round boundary over TCP reproduce the
//!   uninterrupted in-process run with the same effective cohort, bit for
//!   bit; a device killed *mid-round* is quarantined as a disconnect, not
//!   a crash.

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fl::{
    no_hook, run_byzantine_tcp_device, run_churn_tcp_device, run_tcp_device, run_with,
    AdversarialTransport, Aggregator, Behavior, Codec, CostLedger, ExperimentEnv, FaultCounters,
    FlConfig, InProcess, ModelSpec, PresenceSchedule, RunOptions, TcpTransport,
};
use fedtiny_suite::nn::optim::SgdConfig;
use fedtiny_suite::nn::{flat_params, sparse_layout};
use fedtiny_suite::sparse::Mask;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

const TRIMMED_MEAN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/byzantine_trimmed_mean_trace.txt"
);
const FEDAVG_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/byzantine_fedavg_trace.txt"
);

/// Seed of the hostile fleet scenario (env + adversarial byte streams).
const SEED: u64 = 77;
const ADV_SEED: u64 = 1009;
const DEVICES: usize = 10;
const ROUNDS: usize = 16;

/// Minimum accuracy the poisoned `FedAvg` run must *lose* against the
/// honest baseline (in accuracy fraction: 0.10 = 10 points). The exact
/// damage is pinned by the golden trace; this floor keeps the scenario
/// honest if the trace is ever re-blessed.
const FEDAVG_DAMAGE_FLOOR: f32 = 0.10;

/// The 10-device scenario: devices 3 and 7 are Byzantine (model poisoning
/// and garbage/replay frames), device 5 botches one handshake then behaves.
fn hostile_behaviors() -> Vec<Behavior> {
    let mut behaviors = vec![Behavior::Honest; DEVICES];
    behaviors[3] = Behavior::SignFlip { scale: 16.0 };
    behaviors[7] = Behavior::GarbageOrReplay;
    behaviors[5] = Behavior::MidHandshakeDisconnect;
    behaviors
}

/// A 10-device environment big enough that one accuracy point is resolvable
/// (250 test samples → 0.4-point granularity), small enough to stay fast.
fn hostile_env(aggregator: Aggregator) -> ExperimentEnv {
    let cfg = FlConfig {
        devices: DEVICES,
        rounds: ROUNDS,
        local_epochs: 1,
        batch_size: 16,
        sgd: SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: 0.0,
        },
        alpha: 10.0,
        dev_fraction: 0.5,
        participation: 1.0,
        prox_mu: 0.0,
        lr_decay: 1.0,
        parallel: true,
        threads: 0,
        codec: Codec::Dense,
        aggregator,
        collect_timeout_secs: 30.0,
        seed: SEED,
    };
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 20,
        test_per_class: 25,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    ExperimentEnv::new(synth, cfg)
}

/// Deterministic run projection: accuracy bits, final parameter bits, the
/// ledger's simulated/measured axes, and the quarantine counters.
type Trace = (
    Vec<u32>,
    Vec<u32>,
    Vec<u64>,
    Vec<u64>,
    Vec<u64>,
    FaultCounters,
);

fn project(history: &[f32], params: &[f32], ledger: &CostLedger) -> Trace {
    (
        history.iter().map(|v| v.to_bits()).collect(),
        params.iter().map(|v| v.to_bits()).collect(),
        ledger
            .sim_secs_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        ledger
            .payload_up_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        ledger
            .payload_down_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        *ledger.faults(),
    )
}

/// One hostile (or honest, with all-[`Behavior::Honest`] behaviors) run
/// over the in-process adversarial transport.
fn run_hostile_in_process(
    env: &ExperimentEnv,
    behaviors: Vec<Behavior>,
) -> (Vec<f32>, Vec<f32>, CostLedger) {
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = AdversarialTransport::new(InProcess, behaviors, ADV_SEED);
    let history = run_with(
        model.as_mut(),
        &mut mask,
        env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("hostile in-process run");
    ledger.record_handshake_faults(transport.handshake_faults());
    (history, flat_params(model.as_ref()), ledger)
}

/// The honest reference: same env, everyone honest, classic `FedAvg`.
fn clean_baseline_final_acc() -> f32 {
    let env = hostile_env(Aggregator::FedAvg);
    let (history, _, ledger) = run_hostile_in_process(&env, vec![Behavior::Honest; DEVICES]);
    assert!(ledger.faults().is_clean(), "honest fleet must stay clean");
    *history.last().expect("nonempty history")
}

/// Renders one hostile run's trace with a quarantine footer; bits make the
/// comparison exact, display values make diffs readable.
fn render_hostile_trace(header: &str, history: &[f32], ledger: &CostLedger) -> String {
    let mut out = String::from(header);
    for (round, acc) in history.iter().enumerate() {
        let sim = ledger.sim_secs_history()[round];
        let up = ledger.payload_up_history()[round];
        out.push_str(&format!(
            "round {round}: acc={acc:.4} acc_bits={:08x} sim_bits={:016x} up_bytes={up:.0} \
             up_bits={:016x}\n",
            acc.to_bits(),
            sim.to_bits(),
            up.to_bits(),
        ));
    }
    let f = ledger.faults();
    out.push_str(&format!(
        "faults: malformed={} replays={} disconnects={} inflated={} clipped={} handshakes={} \
         quarantined={}\n",
        f.malformed_frames,
        f.replays,
        f.disconnects,
        f.inflated_samples,
        f.clipped_updates,
        f.rejected_handshakes,
        ledger.quarantined_updates(),
    ));
    out.push_str(&format!(
        "total: makespan_bits={:016x} upload_bits={:016x} zero_progress={} dropped={}\n",
        ledger.sim_makespan_secs().to_bits(),
        ledger.total_payload_upload_bytes().to_bits(),
        ledger.zero_progress_rounds(),
        ledger.dropped_updates(),
    ));
    out
}

fn compare_or_bless(path: &str, got: &str) {
    if std::env::var("FT_BLESS").is_ok() {
        std::fs::write(path, got).expect("write golden trace");
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!("missing {path} — run FT_BLESS=1 cargo test --test hostile_fleet")
    });
    assert_eq!(
        got, &want,
        "golden trace {path} drifted; if intentional, regenerate with \
         FT_BLESS=1 cargo test --test hostile_fleet"
    );
}

/// TrimmedMean under attack: the two Byzantine members are trimmed or
/// quarantined, the run converges within one point of the honest baseline,
/// and the whole hostile pipeline is pinned byte-for-byte.
#[test]
fn byzantine_trimmed_mean_golden_trace_and_recovery() {
    let env = hostile_env(Aggregator::TrimmedMean { beta: 0.15 });
    let (history, _, ledger) = run_hostile_in_process(&env, hostile_behaviors());
    let got = render_hostile_trace(
        "# Golden adversarial trace: TrimmedMean(0.15), 10 devices (seed 77),\n\
         # device 3 = sign_flip:16, device 7 = garbage_or_replay, device 5 = handshake_drop.\n\
         # Regenerate: FT_BLESS=1 cargo test --test hostile_fleet\n",
        &history,
        &ledger,
    );
    compare_or_bless(TRIMMED_MEAN_PATH, &got);

    // GarbageOrReplay: garbage on even rounds, replays on odd — half the
    // rounds each. The poisoner passes every screen — only the trim stops it.
    let f = ledger.faults();
    assert_eq!(f.malformed_frames, ROUNDS as u64 / 2);
    assert_eq!(f.replays, ROUNDS as u64 / 2);
    assert_eq!(f.rejected_handshakes, 1);
    assert_eq!(ledger.quarantined_updates(), ROUNDS as u64);

    let robust_final = *history.last().expect("nonempty history");
    let clean_final = clean_baseline_final_acc();
    assert!(
        clean_final - robust_final <= 0.0101,
        "TrimmedMean under attack must stay within one point of the honest \
         baseline: robust {robust_final:.4} vs clean {clean_final:.4}"
    );
}

/// The same fleet under plain FedAvg: the garbage device is still
/// quarantined (the screens are aggregator-independent), but the poisoner
/// is averaged straight in and the damage is pinned.
#[test]
fn byzantine_fedavg_damage_is_pinned() {
    let env = hostile_env(Aggregator::FedAvg);
    let (history, _, ledger) = run_hostile_in_process(&env, hostile_behaviors());
    let got = render_hostile_trace(
        "# Golden adversarial trace: plain FedAvg, same hostile fleet as the\n\
         # TrimmedMean trace (seed 77) — pins the UNdefended damage.\n\
         # Regenerate: FT_BLESS=1 cargo test --test hostile_fleet\n",
        &history,
        &ledger,
    );
    compare_or_bless(FEDAVG_PATH, &got);

    let poisoned_final = *history.last().expect("nonempty history");
    let clean_final = clean_baseline_final_acc();
    assert!(
        clean_final - poisoned_final >= FEDAVG_DAMAGE_FLOOR,
        "sign-flip poisoning must damage plain FedAvg by at least \
         {FEDAVG_DAMAGE_FLOOR}: poisoned {poisoned_final:.4} vs clean {clean_final:.4}"
    );
}

/// The acceptance scenario: the seeded 10-device fleet with its Byzantine
/// members over real loopback sockets. The tolerant server completes every
/// round without a panic, and the whole run — accuracy bits, parameter
/// bits, ledger axes, and fault counters — is bit-identical to the
/// in-process adversarial twin.
#[test]
fn byzantine_tcp_fleet_matches_in_process_twin_bit_exactly() {
    let env = hostile_env(Aggregator::TrimmedMean { beta: 0.15 });
    let behaviors = hostile_behaviors();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let clients: Vec<_> = (0..DEVICES)
        .map(|k| {
            let behavior = behaviors[k];
            let client_env = hostile_env(Aggregator::TrimmedMean { beta: 0.15 });
            std::thread::spawn(move || match behavior {
                Behavior::Honest => {
                    run_tcp_device(addr, k, &client_env, &ModelSpec::small_cnn_test())
                        .unwrap_or_else(|e| panic!("honest device {k} failed: {e}"))
                }
                _ => run_byzantine_tcp_device(
                    addr,
                    k,
                    &client_env,
                    &ModelSpec::small_cnn_test(),
                    behavior,
                    ADV_SEED,
                )
                .unwrap_or_else(|e| panic!("byzantine device {k} failed: {e}")),
            })
        })
        .collect();
    let mut transport =
        TcpTransport::accept_fleet_tolerant(listener, DEVICES).expect("tolerant accept");

    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("hostile TCP run must complete without a server failure");
    ledger.record_handshake_faults(transport.handshake_faults());
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(history.len(), ROUNDS, "every round must complete");
    let tcp = project(&history, &flat_params(model.as_ref()), &ledger);

    let (twin_history, twin_params, twin_ledger) = run_hostile_in_process(&env, behaviors);
    let twin = project(&twin_history, &twin_params, &twin_ledger);
    assert_eq!(
        tcp, twin,
        "hostile TCP run diverged from its in-process adversarial twin"
    );
}

// ---------------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------------

/// One device's planned absence: leaves after replying to `leave_after`,
/// rejoins at `rejoin` (or stays gone).
#[derive(Clone, Copy, Debug)]
struct Churn {
    device: usize,
    leave_after: usize,
    rejoin: Option<usize>,
}

fn presence_for(churns: &[Churn], rounds: usize) -> PresenceSchedule {
    let mut presence = PresenceSchedule::new();
    for c in churns {
        presence = presence.absent(c.device, c.leave_after + 1..c.rejoin.unwrap_or(rounds));
    }
    presence
}

/// The uninterrupted reference: the same effective cohort per round, run
/// in-process under the presence schedule.
fn run_churn_in_process(seed: u64, churns: &[Churn]) -> Trace {
    let env = ExperimentEnv::tiny_for_tests(seed);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let mut opts = RunOptions::new(&mut transport);
    opts.presence = Some(presence_for(churns, env.cfg.rounds));
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        opts,
    )
    .expect("in-process churn run");
    project(&history, &flat_params(model.as_ref()), &ledger)
}

/// The same schedule over real sockets: churning devices close their
/// connections when they leave, and rejoiners are fresh clients accepted by
/// the retained listener at their scheduled round.
fn run_churn_over_tcp(seed: u64, churns: &[Churn]) -> Trace {
    let env = ExperimentEnv::tiny_for_tests(seed);
    let devices = env.num_devices();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let churning: Vec<usize> = churns.iter().map(|c| c.device).collect();

    let mut threads: Vec<std::thread::JoinHandle<()>> = (0..devices)
        .filter(|k| !churning.contains(k))
        .map(|k| {
            let client_env = ExperimentEnv::tiny_for_tests(seed);
            std::thread::spawn(move || {
                run_tcp_device(addr, k, &client_env, &ModelSpec::small_cnn_test())
                    .unwrap_or_else(|e| panic!("device {k} failed: {e}"));
            })
        })
        .collect();
    for c in churns.iter().copied() {
        let client_env = ExperimentEnv::tiny_for_tests(seed);
        threads.push(std::thread::spawn(move || {
            run_churn_tcp_device(
                addr,
                c.device,
                &client_env,
                &ModelSpec::small_cnn_test(),
                c.leave_after,
            )
            .unwrap_or_else(|e| panic!("departing device {} failed: {}", c.device, e));
            // The rejoin is a brand-new honest client, launched only after
            // the departure completed so its HELLO cannot race the initial
            // fleet accept; it waits in the listener's backlog until the
            // server re-accepts scheduled rejoiners at the rejoin round.
            if c.rejoin.is_some() {
                let rejoin_env = ExperimentEnv::tiny_for_tests(seed);
                run_tcp_device(addr, c.device, &rejoin_env, &ModelSpec::small_cnn_test())
                    .unwrap_or_else(|e| panic!("rejoining device {} failed: {}", c.device, e));
            }
        }));
    }

    let mut transport =
        TcpTransport::accept_fleet_tolerant(listener, devices).expect("tolerant accept");
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut opts = RunOptions::new(&mut transport);
    opts.presence = Some(presence_for(churns, env.cfg.rounds));
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        opts,
    )
    .expect("tcp churn run");
    ledger.record_handshake_faults(transport.handshake_faults());
    for t in threads {
        t.join().expect("client thread");
    }
    project(&history, &flat_params(model.as_ref()), &ledger)
}

/// Kill/rejoin at every round boundary of the tiny 4-round run: each
/// schedule's TCP run must be bit-identical to the uninterrupted in-process
/// run with the same effective cohort — and scheduled churn is not a fault.
#[test]
fn churn_at_every_round_boundary_matches_in_process_twin() {
    let schedules: &[Churn] = &[
        Churn {
            device: 2,
            leave_after: 0,
            rejoin: Some(2),
        },
        Churn {
            device: 2,
            leave_after: 0,
            rejoin: Some(3),
        },
        Churn {
            device: 1,
            leave_after: 1,
            rejoin: Some(3),
        },
        Churn {
            device: 2,
            leave_after: 0,
            rejoin: None,
        },
        Churn {
            device: 0,
            leave_after: 1,
            rejoin: None,
        },
        Churn {
            device: 1,
            leave_after: 2,
            rejoin: None,
        },
    ];
    for (i, &churn) in schedules.iter().enumerate() {
        let seed = 50 + i as u64;
        let tcp = run_churn_over_tcp(seed, &[churn]);
        let twin = run_churn_in_process(seed, &[churn]);
        assert_eq!(tcp, twin, "churn schedule {churn:?} diverged over TCP");
        assert!(
            tcp.5.is_clean(),
            "scheduled churn must not be counted as a fault: {:?}",
            tcp.5
        );
    }
}

/// Two devices churning in overlapping windows, rejoining at different
/// rounds — the multi-rejoiner accept path.
#[test]
fn overlapping_churn_of_two_devices_matches_in_process_twin() {
    let churns = [
        Churn {
            device: 0,
            leave_after: 0,
            rejoin: Some(2),
        },
        Churn {
            device: 2,
            leave_after: 1,
            rejoin: Some(3),
        },
    ];
    let tcp = run_churn_over_tcp(61, &churns);
    let twin = run_churn_in_process(61, &churns);
    assert_eq!(tcp, twin, "overlapping churn diverged over TCP");
    assert!(tcp.5.is_clean());
}

/// An *unscheduled* mid-round death: the device HELLOs and vanishes. The
/// tolerant server quarantines it as a disconnect every round it is
/// expected and still completes the run — a typed fault, never a panic.
#[test]
fn mid_round_kill_is_quarantined_not_fatal() {
    let seed = 31;
    let env = ExperimentEnv::tiny_for_tests(seed);
    let devices = env.num_devices();
    let rounds = env.cfg.rounds;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    let mut threads: Vec<_> = (1..devices)
        .map(|k| {
            let client_env = ExperimentEnv::tiny_for_tests(seed);
            std::thread::spawn(move || {
                run_tcp_device(addr, k, &client_env, &ModelSpec::small_cnn_test())
                    .unwrap_or_else(|e| panic!("device {k} failed: {e}"));
            })
        })
        .collect();
    // Device 0 is a raw socket: a valid HELLO frame (4-byte LE length,
    // kind byte 1, device id), then it hangs up before the first round.
    threads.push(std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&4u32.to_le_bytes()).expect("len");
        stream.write_all(&[1u8]).expect("kind");
        stream.write_all(&0u32.to_le_bytes()).expect("device id");
        // Read nothing; dropping the stream kills it mid-round.
    }));

    let mut transport =
        TcpTransport::accept_fleet_tolerant(listener, devices).expect("tolerant accept");
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("an unscheduled death must not abort the tolerant run");
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(history.len(), rounds);
    // One disconnect per round the dead device was in the cohort: the
    // mid-round death, then a dead-stream fault at every later broadcast.
    assert_eq!(ledger.faults().disconnects, rounds as u64);
    assert_eq!(ledger.quarantined_updates(), rounds as u64);
}
