//! Cross-crate invariant tests: properties the FedTiny algorithms must
//! maintain no matter the configuration.

use fedtiny_suite::fedtiny::{
    adaptive_bn_selection, generate_candidate_pool, progressive::progressive_adjust,
    ProgressiveConfig, SelectionConfig,
};
use fedtiny_suite::fl::{ExperimentEnv, ModelSpec};
use fedtiny_suite::nn::{apply_mask, flat_params, prunable_param_indices, sparse_layout, Model};
use fedtiny_suite::sparse::{magnitude_mask, uniform_density_vector, Mask, PruneSchedule};
use proptest::prelude::*;

fn env_and_model(seed: u64) -> (ExperimentEnv, Box<dyn Model>) {
    let env = ExperimentEnv::tiny_for_tests(seed);
    let model = env.build_model(&ModelSpec::small_cnn_test());
    (env, model)
}

fn coarse_mask(model: &dyn Model, d: f32) -> Mask {
    let layout = sparse_layout(model);
    let weights: Vec<&[f32]> = model
        .params()
        .into_iter()
        .filter(|p| p.prunable)
        .map(|p| p.data.data())
        .collect();
    magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, d))
}

#[test]
fn selection_never_exceeds_density_budget() {
    let (env, model) = env_and_model(1);
    for d in [0.05f32, 0.2, 0.5, 0.9] {
        let cfg = SelectionConfig {
            d_target: d,
            pool_size: 5,
            noise_spread: 0.6,
            seed: 3,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let out = adaptive_bn_selection(model.as_ref(), &env, &pool);
        // ceil() keeps at most one extra weight per layer.
        let slack = out.mask.num_layers() as f32 / out.mask.total_len() as f32;
        assert!(
            out.mask.density() <= d + slack + 1e-6,
            "d={d}: selected density {}",
            out.mask.density()
        );
    }
}

#[test]
fn progressive_adjustment_conserves_per_layer_counts() {
    let (env, mut model) = env_and_model(2);
    let mut mask = coarse_mask(model.as_ref(), 0.3);
    apply_mask(model.as_mut(), &mask);
    let before: Vec<usize> = (0..mask.num_layers()).map(|l| mask.layer_ones(l)).collect();
    let cfg = ProgressiveConfig::tiny_for_tests();
    let unit: Vec<usize> = (0..mask.num_layers()).collect();
    for round in 0..3 {
        let _ = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, round);
        let after: Vec<usize> = (0..mask.num_layers()).map(|l| mask.layer_ones(l)).collect();
        assert_eq!(
            before, after,
            "round {round}: per-layer alive counts drifted"
        );
    }
}

#[test]
fn masked_weights_stay_zero_through_selection_and_adjustment() {
    let (env, mut model) = env_and_model(3);
    let mut mask = coarse_mask(model.as_ref(), 0.4);
    apply_mask(model.as_mut(), &mask);
    let cfg = ProgressiveConfig::tiny_for_tests();
    let unit: Vec<usize> = (0..mask.num_layers()).collect();
    let _ = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 0);
    let pos = prunable_param_indices(model.as_ref());
    let params = model.params();
    for l in 0..mask.num_layers() {
        let w = params[pos[l]].data.data();
        for (i, alive) in mask.layer(l).iter().enumerate() {
            assert!(
                alive | (w[i] == 0.0),
                "layer {l} idx {i}: pruned weight {}",
                w[i]
            );
        }
    }
}

#[test]
fn bn_selection_does_not_mutate_the_global_model() {
    let (env, model) = env_and_model(4);
    let before = flat_params(model.as_ref());
    let bn_before: Vec<_> = model.bn_stats().into_iter().cloned().collect();
    let cfg = SelectionConfig {
        d_target: 0.3,
        pool_size: 3,
        noise_spread: 0.5,
        seed: 9,
    };
    let pool = generate_candidate_pool(model.as_ref(), &cfg);
    let _ = adaptive_bn_selection(model.as_ref(), &env, &pool);
    assert_eq!(before, flat_params(model.as_ref()));
    let bn_after: Vec<_> = model.bn_stats().into_iter().cloned().collect();
    assert_eq!(bn_before, bn_after, "selection must work on clones only");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Candidate pools always satisfy the density budget for any target.
    #[test]
    fn candidate_pool_budget(d in 0.02f32..0.9, pool in 1usize..6, seed in 0u64..20) {
        let (_, model) = env_and_model(5);
        let cfg = SelectionConfig { d_target: d, pool_size: pool, noise_spread: 0.5, seed };
        let masks = generate_candidate_pool(model.as_ref(), &cfg);
        prop_assert_eq!(masks.len(), pool);
        let layout = sparse_layout(model.as_ref());
        let slack = layout.num_layers() as f32 / layout.total_len() as f32;
        for m in &masks {
            prop_assert!(m.matches_layout(&layout));
            prop_assert!(m.density() <= d + slack + 1e-6);
        }
    }

    /// The cosine schedule never requests more growth than prunable slots.
    #[test]
    fn schedule_counts_feasible(round in 0usize..200, alive in 0usize..10_000) {
        let s = PruneSchedule::paper_default(5);
        let a = s.count_at(round, alive);
        prop_assert!(a <= alive);
    }
}
