//! Operator-surface integration: the live metrics endpoint, the trace
//! stream, and the `ft` CLI's pinned text contracts.
//!
//! The metrics plumbing's core promise is *observation without
//! interference*: a run with a hub attached is bit-identical to the same
//! run without one, and everything the endpoint reports is exactly what
//! the cost ledger recorded — no sampling, no drift.
//!
//! Regenerate the pinned CLI goldens after an *intentional* change with:
//!
//! ```bash
//! FT_BLESS=1 cargo test --test operator_cli
//! ```

use fedtiny_suite::data::{DatasetProfile, SynthConfig};
use fedtiny_suite::fl::{
    encode_trace_frame, no_hook, read_trace_frame, run_tcp_device, run_with, CostLedger,
    ExperimentEnv, FlConfig, InProcess, MetricsHub, ModelSpec, RunOptions, TcpTransport,
    TraceEvent, TraceStreamError,
};
use fedtiny_suite::nn::{flat_params, sparse_layout};
use fedtiny_suite::sparse::Mask;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const SEED: u64 = 23;
const DEVICES: usize = 4;
const ROUNDS: usize = 6;

/// The `ft run` demo-preset environment (also the TCP examples' seed).
fn demo_env_rounds(rounds: usize) -> ExperimentEnv {
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: 12,
        test_per_class: 8,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = DEVICES;
    cfg.rounds = rounds;
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    ExperimentEnv::new(synth, cfg)
}

fn demo_env() -> ExperimentEnv {
    demo_env_rounds(ROUNDS)
}

fn spec() -> ModelSpec {
    ModelSpec::SmallCnn { width: 4, input: 8 }
}

/// Runs the demo fleet in-process with an optional hub; returns the final
/// params, accuracy history and the ledger.
fn run_demo(metrics: Option<Arc<MetricsHub>>) -> (Vec<f32>, Vec<f32>, CostLedger) {
    let env = demo_env();
    let mut model = env.build_model(&spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let mut opts = RunOptions::new(&mut transport);
    opts.metrics = metrics;
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        opts,
    )
    .expect("demo run");
    (flat_params(model.as_ref()), history, ledger)
}

/// Pulls one metric's samples out of a text exposition: `(labels, value)`
/// pairs in document order.
fn samples<'a>(body: &'a str, name: &str) -> Vec<(&'a str, f64)> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (key, value) = l.rsplit_once(' ')?;
            let labels = key.strip_prefix(name)?;
            if !labels.is_empty() && !labels.starts_with('{') {
                return None; // ft_rounds_completed vs ft_rounds_completed_foo
            }
            Some((labels, value.parse().ok()?))
        })
        .collect()
}

fn sample(body: &str, name: &str) -> f64 {
    let found = samples(body, name);
    assert_eq!(found.len(), 1, "{name}: expected one sample, got {found:?}");
    found[0].1
}

/// A real scrape over the endpoint's TCP listener.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    assert!(headers.starts_with("HTTP/1.0 200 OK"), "{headers}");
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4"),
        "{headers}"
    );
    body.to_string()
}

/// A seeded 4-device fleet over real TCP sockets with the endpoint
/// serving; after the run, the scrape must match the cost ledger
/// *exactly* — staleness histogram, payload counters, fault counters.
#[test]
fn tcp_run_scrape_matches_ledger_exactly() {
    let hub = MetricsHub::new();
    let endpoint = hub.serve("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = endpoint.local_addr();

    let env = demo_env();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fleet port");
    let fleet_addr = listener.local_addr().expect("fleet addr");
    let clients: Vec<_> = (0..DEVICES)
        .map(|k| {
            let env = demo_env();
            std::thread::spawn(move || {
                run_tcp_device(fleet_addr, k, &env, &spec()).expect("device run");
            })
        })
        .collect();
    let mut transport = TcpTransport::accept_fleet(&listener, DEVICES).expect("accept fleet");
    let mut model = env.build_model(&spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut opts = RunOptions::new(&mut transport);
    opts.metrics = Some(hub.clone());
    run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        opts,
    )
    .expect("tcp server run");
    for c in clients {
        c.join().expect("client thread");
    }

    let body = scrape(addr);

    // Round/cohort/fleet gauges.
    assert_eq!(sample(&body, "ft_rounds_completed"), ROUNDS as f64);
    assert_eq!(sample(&body, "ft_fleet_devices"), DEVICES as f64);

    // Staleness histogram == the ledger's timeline, entry for entry.
    let timeline = ledger.timeline();
    assert_eq!(
        sample(&body, "ft_update_staleness_rounds_count"),
        timeline.len() as f64
    );
    let stale_sum: u64 = timeline.iter().map(|e| e.staleness as u64).sum();
    assert_eq!(
        sample(&body, "ft_update_staleness_rounds_sum"),
        stale_sum as f64
    );
    for (labels, value) in samples(&body, "ft_update_staleness_rounds_bucket") {
        let le = labels.trim_start_matches("{le=\"").trim_end_matches("\"}");
        let expected = if le == "+Inf" {
            timeline.len()
        } else {
            let edge: usize = le.parse().expect("bucket edge");
            timeline.iter().filter(|e| e.staleness <= edge).count()
        };
        assert_eq!(value, expected as f64, "bucket le={le}");
    }

    // Payload counters are the ledger's cumulative totals, bit-exact (the
    // exposition uses shortest-round-trip float formatting).
    let up = samples(&body, "ft_payload_bytes_total")
        .into_iter()
        .find(|(l, _)| l.contains("up"))
        .expect("up direction")
        .1;
    assert_eq!(up.to_bits(), ledger.total_payload_upload_bytes().to_bits());
    assert_eq!(
        sample(&body, "ft_sim_makespan_seconds").to_bits(),
        ledger.sim_makespan_secs().to_bits()
    );
    assert_eq!(
        sample(&body, "ft_zero_progress_rounds"),
        ledger.zero_progress_rounds() as f64
    );
    for (labels, value) in samples(&body, "ft_faults_total") {
        assert_eq!(value, 0.0, "clean run must report zero faults ({labels})");
    }

    endpoint.shutdown();
}

/// Attaching a hub must not change the math: metrics-on and metrics-off
/// runs of the same seed produce bit-identical models and histories.
#[test]
fn metrics_hub_is_strictly_observational() {
    let (params_off, history_off, ledger_off) = run_demo(None);
    let hub = MetricsHub::new();
    let (params_on, history_on, ledger_on) = run_demo(Some(hub.clone()));

    assert_eq!(params_off.len(), params_on.len());
    let drifted = params_off
        .iter()
        .zip(&params_on)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    assert_eq!(drifted, 0, "metrics hub changed the model");
    assert_eq!(history_off.len(), history_on.len());
    for (a, b) in history_off.iter().zip(&history_on) {
        assert_eq!(a.to_bits(), b.to_bits(), "metrics hub changed accuracy");
    }
    assert_eq!(
        ledger_off.sim_makespan_secs().to_bits(),
        ledger_on.sim_makespan_secs().to_bits()
    );

    // And the hub saw every timeline event the ledger recorded.
    let body = hub.render_text();
    assert_eq!(
        sample(&body, "ft_update_staleness_rounds_count"),
        ledger_on.timeline().len() as f64
    );
}

/// A live `WATCH` subscriber receives one frame per ledger timeline event
/// and a clean EOF when the endpoint shuts down.
#[test]
fn watch_stream_delivers_every_timeline_event() {
    let hub = MetricsHub::new();
    let endpoint = hub.serve("127.0.0.1:0").expect("bind metrics endpoint");
    let mut watcher = TcpStream::connect(endpoint.local_addr()).expect("connect watcher");
    watcher.write_all(b"WATCH\r\n").expect("subscribe");
    // The accept loop registers the subscription on its own thread; give
    // it a moment before the run starts emitting frames.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let (_, _, ledger) = run_demo(Some(hub.clone()));
    endpoint.shutdown();

    let mut events: Vec<TraceEvent> = Vec::new();
    loop {
        match read_trace_frame(&mut watcher) {
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => break,
            Err(e) => panic!("watch stream error: {e}"),
        }
    }
    let timeline = ledger.timeline();
    assert_eq!(events.len(), timeline.len());
    for (ev, t) in events.iter().zip(timeline.iter()) {
        assert_eq!(ev.device, t.device as u64);
        assert_eq!(ev.round, t.round as u64);
        assert_eq!(ev.applied, t.applied);
        assert_eq!(ev.staleness, t.staleness as u64);
        assert_eq!(ev.start_secs.to_bits(), t.start_secs.to_bits());
        assert_eq!(ev.finish_secs.to_bits(), t.finish_secs.to_bits());
    }
}

/// Truncating a frame stream at *any* byte offset is a typed error (or a
/// clean EOF at a frame boundary) — never a panic.
#[test]
fn truncated_trace_stream_is_a_typed_error() {
    let ev = TraceEvent {
        device: 3,
        round: 17,
        start_secs: 1.25,
        finish_secs: 2.5,
        applied: true,
        staleness: 2,
    };
    let frame = encode_trace_frame(&ev);
    // Full frame round-trips.
    let mut cursor = &frame[..];
    let decoded = read_trace_frame(&mut cursor).expect("full frame").unwrap();
    assert_eq!(decoded, ev);

    for cut in 0..frame.len() {
        let mut partial = &frame[..cut];
        match read_trace_frame(&mut partial) {
            // Empty input is a clean end-of-stream.
            Ok(None) => assert_eq!(cut, 0, "only an empty stream is clean EOF"),
            Ok(Some(_)) => panic!("decoded an event from {cut} truncated bytes"),
            Err(TraceStreamError::Io(_)) | Err(TraceStreamError::Decode(_)) => {}
        }
    }

    // The `ft watch` loop surfaces the same condition as exit code 1.
    let mut partial = &frame[..frame.len() - 1];
    let mut sink = Vec::new();
    let code = ft_cli::watch::watch_stream(&mut partial, None, &mut sink);
    assert_eq!(code, 1, "truncation must fail the watcher");
    assert!(sink.is_empty(), "no event line for a truncated frame");
}

/// A corrupt length prefix (oversized or unknown kind) is rejected before
/// any allocation or field decode.
#[test]
fn corrupt_trace_frames_are_rejected() {
    let ev = TraceEvent {
        device: 0,
        round: 1,
        start_secs: 0.0,
        finish_secs: 1.0,
        applied: false,
        staleness: 0,
    };
    let mut frame = encode_trace_frame(&ev);

    // Oversized body length.
    let mut oversized = frame.clone();
    oversized[..4].copy_from_slice(&(1u32 << 24).to_le_bytes());
    let mut r = &oversized[..];
    assert!(matches!(
        read_trace_frame(&mut r),
        Err(TraceStreamError::Decode(_))
    ));

    // Unknown frame kind.
    frame[4] = 0xEE;
    let mut r = &frame[..];
    assert!(matches!(
        read_trace_frame(&mut r),
        Err(TraceStreamError::Decode(_))
    ));
}

const HELP_TOP_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/help_top.txt");

/// The top-level `ft --help` text is a pinned contract (the CI lint job
/// smokes every subcommand's --help for exit 0; this pins the content).
#[test]
fn help_text_is_pinned() {
    let rendered = format!("{}\n", ft_cli::help::TOP);
    if std::env::var("FT_BLESS").is_ok() {
        std::fs::write(HELP_TOP_PATH, &rendered).expect("bless help golden");
        return;
    }
    let golden = std::fs::read_to_string(HELP_TOP_PATH).expect("read help golden");
    assert_eq!(
        rendered, golden,
        "ft --help drifted from tests/golden/help_top.txt; \
         rerun with FT_BLESS=1 if the change is intentional"
    );

    // Every subcommand help names itself and shows a usage block.
    for (cmd, text) in [
        ("run", ft_cli::help::RUN),
        ("serve", ft_cli::help::SERVE),
        ("device", ft_cli::help::DEVICE),
        ("resume", ft_cli::help::RESUME),
        ("ckpt", ft_cli::help::CKPT),
        ("watch", ft_cli::help::WATCH),
        ("bench", ft_cli::help::BENCH),
    ] {
        assert!(text.starts_with(&format!("ft {cmd} — ")), "{cmd}");
        assert!(text.contains("USAGE:"), "{cmd}");
        assert_eq!(ft_cli::help::for_topic(Some(cmd)), text);
    }
}

const CKPT_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/ckpt_inspect_demo.txt"
);

/// `ft ckpt inspect` of a seeded demo checkpoint is deterministic across
/// hosts and thread counts — pinned by a committed golden.
#[test]
fn ckpt_inspect_matches_golden() {
    let dir = std::env::temp_dir().join(format!("ft-cli-inspect-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("demo.ckpt");

    let env = demo_env_rounds(3);
    let mut model = env.build_model(&spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let mut transport = InProcess;
    let mut opts = RunOptions::new(&mut transport);
    opts.checkpoint = Some(fedtiny_suite::fl::CheckpointSpec::every_round(&path));
    run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        opts,
    )
    .expect("checkpointed demo run");

    let ckpt = fedtiny_suite::fl::Checkpoint::load(&path).expect("load checkpoint");
    let rendered = ft_cli::ckpt::format_inspect(&ckpt.summary());
    std::fs::remove_dir_all(&dir).ok();

    if std::env::var("FT_BLESS").is_ok() {
        std::fs::write(CKPT_GOLDEN_PATH, &rendered).expect("bless ckpt golden");
        return;
    }
    let golden = std::fs::read_to_string(CKPT_GOLDEN_PATH).expect("read ckpt golden");
    assert_eq!(
        rendered, golden,
        "ckpt inspect drifted from tests/golden/ckpt_inspect_demo.txt; \
         rerun with FT_BLESS=1 if the change is intentional"
    );

    // Self-diff of the same state is empty (the `ft ckpt diff` contract).
    let again = fedtiny_suite::fl::Checkpoint::from_bytes(&ckpt.to_bytes()).expect("round-trip");
    assert!(ckpt.diff(&again).is_empty());
}
