//! End-to-end checks of the sparse execution engine: the sparse path must
//! produce the same numbers as the dense-masked path while executing
//! measurably fewer FLOPs at low density.

use fedtiny_suite::fedtiny::{run_fedtiny, FedTinyConfig};
use fedtiny_suite::fl::ExperimentEnv;
use fedtiny_suite::nn::{apply_mask, sparse_layout, Mode, Model};
use fedtiny_suite::sparse::{magnitude_mask, uniform_density_vector, Mask};
use fedtiny_suite::tensor::normal;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A masked SmallCnn at the given density plus a batch of inputs.
fn masked_model(density: f32, seed: u64) -> (Box<dyn Model>, Mask) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model: Box<dyn Model> = Box::new(fedtiny_suite::nn::models::SmallCnn::new(
        &mut rng, 8, 10, 3, 16,
    ));
    let layout = sparse_layout(model.as_ref());
    let weights: Vec<&[f32]> = model
        .params()
        .into_iter()
        .filter(|p| p.prunable)
        .map(|p| p.data.data())
        .collect();
    let mask = magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, density));
    drop(weights);
    apply_mask(model.as_mut(), &mask);
    (model, mask)
}

#[test]
fn sparse_forward_matches_dense_masked_forward() {
    // Acceptance criterion: at density ≤ 0.2 on the SmallCnn profile the
    // sparse forward agrees with the dense-masked forward within 1e-5.
    let (mut sparse, _) = masked_model(0.2, 7);
    let (mut dense, _) = masked_model(0.2, 7);
    sparse.set_sparse_crossover(1.0);
    dense.set_sparse_crossover(0.0);
    let x = normal(
        &mut ChaCha8Rng::seed_from_u64(99),
        &[4, 3, 16, 16],
        0.0,
        1.0,
    );
    for mode in [Mode::Train, Mode::Eval] {
        let ys = sparse.forward(&x, mode);
        let yd = dense.forward(&x, mode);
        assert_eq!(ys.shape(), yd.shape());
        for (a, b) in ys.data().iter().zip(yd.data().iter()) {
            assert!((a - b).abs() < 1e-5, "sparse {a} vs dense {b}");
        }
    }
}

#[test]
fn sparse_training_step_executes_fewer_flops() {
    // A full forward + backward at density 0.2 must realize well under half
    // the dense MAC count (the prunable layers dominate this model).
    let (mut sparse, _) = masked_model(0.2, 11);
    let (mut dense, _) = masked_model(0.2, 11);
    sparse.set_sparse_crossover(1.0);
    dense.set_sparse_crossover(0.0);
    let x = normal(&mut ChaCha8Rng::seed_from_u64(5), &[8, 3, 16, 16], 0.0, 1.0);

    for model in [&mut sparse, &mut dense] {
        model.reset_realized_flops();
        let y = model.forward(&x, Mode::Train);
        let gy = fedtiny_suite::tensor::Tensor::ones(y.shape());
        model.backward(&gy);
    }
    let (s, d) = (sparse.realized_flops(), dense.realized_flops());
    assert!(s > 0.0 && d > 0.0);
    assert!(
        s < 0.55 * d,
        "sparse path executed {s:.3e} MACs vs dense {d:.3e} — not sparse enough"
    );
}

#[test]
fn sparse_and_dense_training_agree_after_a_step() {
    // One masked SGD step through each path keeps the models numerically
    // together (alive weight gradients match; pruned coordinates stay 0).
    let (mut sparse, mask) = masked_model(0.2, 13);
    let (mut dense, _) = masked_model(0.2, 13);
    sparse.set_sparse_crossover(1.0);
    dense.set_sparse_crossover(0.0);
    let x = normal(&mut ChaCha8Rng::seed_from_u64(3), &[4, 3, 16, 16], 0.0, 1.0);
    let labels: Vec<usize> = (0..4).map(|i| i % 10).collect();

    use fedtiny_suite::nn::loss::softmax_cross_entropy;
    use fedtiny_suite::nn::optim::{Sgd, SgdConfig};
    for model in [&mut sparse, &mut dense] {
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.05,
            ..Default::default()
        });
        let logits = model.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        model.backward(&grad);
        sgd.step(model.as_mut(), Some(&mask));
        model.zero_grad();
    }
    let ws = fedtiny_suite::nn::flat_params(sparse.as_ref());
    let wd = fedtiny_suite::nn::flat_params(dense.as_ref());
    for (i, (a, b)) in ws.iter().zip(wd.iter()).enumerate() {
        assert!((a - b).abs() < 1e-4, "weight {i}: sparse {a} vs dense {b}");
    }
}

#[test]
fn fedtiny_run_records_realized_costs() {
    let env = ExperimentEnv::tiny_for_tests(21);
    let cfg = FedTinyConfig::tiny_for_tests(0.3);
    let result = run_fedtiny(&env, &cfg);
    assert!(
        result.realized_round_flops > 0.0,
        "realized FLOPs not recorded"
    );
    assert!(result.train_wall_secs > 0.0, "wall-clock not recorded");
    // Realized counts only GEMM MACs while the analytic number includes BN
    // and a 3x-forward backward estimate — same order of magnitude, not
    // equal. Sanity: within a factor of 100 of the analytic count.
    let ratio = result.realized_round_flops / result.max_round_flops;
    assert!(
        (0.01..100.0).contains(&ratio),
        "realized/analytic ratio {ratio} out of range"
    );
}
