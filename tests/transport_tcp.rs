//! Loopback-TCP federation net: the same run exchanged over real sockets
//! (length-prefixed frames on 127.0.0.1) must reach the bit-identical
//! final aggregated model — and the identical deterministic ledger — as
//! the in-process transport of the same seed.

use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, run_tcp_device, run_with, Codec, CostLedger, ExperimentEnv,
    ModelSpec, RunOptions, Scheduler, TcpTransport,
};
use fedtiny_suite::nn::{apply_mask, flat_params, sparse_layout};
use fedtiny_suite::sparse::Mask;
use std::net::TcpListener;

/// Builds the shared environment; `half_prune` kills every even
/// coordinate of the first prunable layer so sparse values-only uploads
/// are genuinely exercised over the wire.
fn build_env(scheduler: Scheduler, codec: Codec, seed: u64) -> ExperimentEnv {
    build_env_part(scheduler, codec, seed, 1.0)
}

fn build_env_part(
    scheduler: Scheduler,
    codec: Codec,
    seed: u64,
    participation: f32,
) -> ExperimentEnv {
    let mut env = ExperimentEnv::tiny_for_tests(seed);
    env.scheduler = scheduler;
    env.cfg.codec = codec;
    env.cfg.participation = participation;
    env
}

fn initial_mask(env: &ExperimentEnv, half_prune: bool) -> Mask {
    let model = env.build_model(&ModelSpec::small_cnn_test());
    let layout = sparse_layout(model.as_ref());
    let mut mask = Mask::ones(&layout);
    if half_prune {
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                mask.set(0, i, false);
            }
        }
    }
    mask
}

/// Deterministic run projection: history bits + final param bits + the
/// ledger's simulated/measured axes.
type Trace = (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>, Vec<u64>);

fn project(history: &[f32], params: &[f32], ledger: &CostLedger) -> Trace {
    (
        history.iter().map(|v| v.to_bits()).collect(),
        params.iter().map(|v| v.to_bits()).collect(),
        ledger
            .sim_secs_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        ledger
            .payload_up_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        ledger
            .payload_down_history()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

/// The in-process reference run.
fn run_in_process(scheduler: Scheduler, codec: Codec, seed: u64, half_prune: bool) -> Trace {
    run_in_process_part(scheduler, codec, seed, half_prune, 1.0)
}

fn run_in_process_part(
    scheduler: Scheduler,
    codec: Codec,
    seed: u64,
    half_prune: bool,
    participation: f32,
) -> Trace {
    let env = build_env_part(scheduler, codec, seed, participation);
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = initial_mask(&env, half_prune);
    apply_mask(model.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
    );
    project(&history, &flat_params(model.as_ref()), &ledger)
}

/// The same run with the server and one client thread per device on an
/// ephemeral loopback port.
fn run_over_tcp(scheduler: Scheduler, codec: Codec, seed: u64, half_prune: bool) -> Trace {
    run_over_tcp_part(scheduler, codec, seed, half_prune, 1.0)
}

fn run_over_tcp_part(
    scheduler: Scheduler,
    codec: Codec,
    seed: u64,
    half_prune: bool,
    participation: f32,
) -> Trace {
    let env = build_env_part(scheduler, codec, seed, participation);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let clients: Vec<_> = (0..env.num_devices())
        .map(|k| {
            let client_env = build_env_part(scheduler, codec, seed, participation);
            std::thread::spawn(move || {
                run_tcp_device(addr, k, &client_env, &ModelSpec::small_cnn_test())
                    .unwrap_or_else(|e| panic!("device {k} failed: {e}"));
            })
        })
        .collect();
    let mut transport =
        TcpTransport::accept_fleet(&listener, env.num_devices()).expect("fleet connects");
    assert_eq!(transport.devices(), env.num_devices());

    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mut mask = initial_mask(&env, half_prune);
    apply_mask(model.as_mut(), &mask);
    let mut ledger = CostLedger::new();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        1,
        &mut ledger,
        &mut no_hook(),
        RunOptions::new(&mut transport),
    )
    .expect("tcp run");
    for c in clients {
        c.join().expect("client thread");
    }
    project(&history, &flat_params(model.as_ref()), &ledger)
}

#[test]
fn tcp_dense_synchronous_matches_in_process_bit_exactly() {
    let tcp = run_over_tcp(Scheduler::Synchronous, Codec::Dense, 42, false);
    let local = run_in_process(Scheduler::Synchronous, Codec::Dense, 42, false);
    assert_eq!(tcp, local, "TCP run diverged from in-process");
}

#[test]
fn tcp_maskcsr_halfpruned_matches_in_process_bit_exactly() {
    // Values-only sparse uploads (shared mask epoch) across a real socket:
    // indices are derived from the mask on both ends, never transmitted.
    let tcp = run_over_tcp(Scheduler::Synchronous, Codec::MaskCsr, 17, true);
    let local = run_in_process(Scheduler::Synchronous, Codec::MaskCsr, 17, true);
    assert_eq!(tcp, local, "MaskCsr TCP run diverged from in-process");
}

#[test]
fn tcp_quantized_deadline_matches_in_process_bit_exactly() {
    // Deadline cuts are a server-side virtual-time decision: the update
    // still crosses the socket, the sim decides it arrived late, and both
    // transports must agree on who survived.
    let sched = Scheduler::Deadline { deadline_secs: 2.0 };
    let tcp = run_over_tcp(sched, Codec::QuantInt8, 9, false);
    let local = run_in_process(sched, Codec::QuantInt8, 9, false);
    assert_eq!(tcp, local, "quantized deadline TCP run diverged");
}

#[test]
fn tcp_rejects_duplicate_device_ids() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let clients: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let env = build_env(Scheduler::Synchronous, Codec::Dense, 0);
                // Both claim device 0; the server must refuse the fleet.
                let _ = run_tcp_device(addr, 0, &env, &ModelSpec::small_cnn_test());
            })
        })
        .collect();
    let err = TcpTransport::accept_fleet(&listener, 2).expect_err("duplicate id must be rejected");
    assert!(err.to_string().contains("twice"), "unexpected error: {err}");
    drop(listener);
    for c in clients {
        let _ = c.join();
    }
}

#[test]
fn tcp_partial_participation_matches_in_process_bit_exactly() {
    // Under participation < 1.0 the in-process loop trains cohort members
    // under their *positional* index within the sampled cohort; the ROUND
    // frame carries that position so TCP devices derive the same RNG
    // streams — without it, any round with a partial cohort diverges.
    let tcp = run_over_tcp_part(Scheduler::Synchronous, Codec::Dense, 5, false, 0.67);
    let local = run_in_process_part(Scheduler::Synchronous, Codec::Dense, 5, false, 0.67);
    assert_eq!(tcp, local, "partial-participation TCP run diverged");
}
