//! Integration tests for the typed update pipeline: measured wire bytes
//! against the analytic formulas, and compressed codecs against the dense
//! exchange — the acceptance net for "cost on paper = cost in code".

use fedtiny_suite::fl::{
    no_hook, run_federated_rounds, Codec, CostLedger, DeviceProfile, ExperimentEnv, ModelSpec,
    RunResult, Scheduler,
};
use fedtiny_suite::metrics::{
    densities_from_mask, sparse_model_bytes_with, ExtraMemory, IndexWidth,
};
use fedtiny_suite::nn::{apply_mask, sparse_layout};
use fedtiny_suite::pruning::run_with_fixed_mask;
use fedtiny_suite::sparse::Mask;

/// A half-pruned mask on the test model's first prunable layer.
fn half_pruned(model: &dyn fedtiny_suite::nn::Model) -> Mask {
    let layout = sparse_layout(model);
    let mut mask = Mask::ones(&layout);
    for i in 0..layout.layer(0).len {
        if i % 2 == 0 {
            mask.set(0, i, false);
        }
    }
    mask
}

/// Acceptance: under `MaskCsr` at matched density, the ledger's measured
/// per-round upload bytes sit within 25% of the analytic
/// `sparse_model_bytes` (shared-mask form — both ends hold the mask, so no
/// index bytes travel).
#[test]
fn measured_maskcsr_bytes_match_analytic_within_25_percent() {
    let mut env = ExperimentEnv::tiny_for_tests(7);
    env.cfg.codec = Codec::MaskCsr;
    env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.scheduler = Scheduler::Deadline { deadline_secs: 5.0 };
    let mut model = env.build_model(&ModelSpec::small_cnn_test());
    let mask = half_pruned(model.as_ref());
    let mut mask = mask;
    apply_mask(model.as_mut(), &mask);
    let arch = model.arch();
    let mut ledger = CostLedger::new();
    let _ = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
    );

    let densities = densities_from_mask(&mask);
    let analytic_shared = sparse_model_bytes_with(&arch, &densities, IndexWidth::Shared);
    for (&up, &down) in ledger
        .payload_up_history()
        .iter()
        .zip(ledger.payload_down_history().iter())
    {
        for measured in [up, down] {
            let rel = (measured - analytic_shared).abs() / analytic_shared;
            assert!(
                rel < 0.25,
                "measured {measured} vs analytic {analytic_shared}: off by {:.1}%",
                rel * 100.0
            );
        }
    }
    // The classic indexed analytic number stays a (near) upper bound.
    let analytic_indexed = sparse_model_bytes_with(&arch, &densities, IndexWidth::PerLayer);
    assert!(ledger.payload_up_history()[0] < analytic_indexed);
}

fn run_codec(codec: Codec, seed: u64) -> RunResult {
    let env = ExperimentEnv::tiny_for_tests(seed).with_codec(codec);
    let spec = ModelSpec::small_cnn_test();
    let model = env.build_model(&spec);
    let mask = Mask::ones(&sparse_layout(model.as_ref()));
    drop(model);
    run_with_fixed_mask(&env, &spec, &mask, "probe", ExtraMemory::None, 0)
}

/// Acceptance: the compressed codecs reach ≥ 3x fewer measured upload
/// bytes than the dense exchange while training comparably on the seed
/// workload (the lab-scale parity table is the `fig_comm_compression`
/// bench; here the tiny workload pins the mechanism).
#[test]
fn compressed_codecs_train_with_3x_fewer_upload_bytes() {
    let dense = run_codec(Codec::Dense, 11);
    assert!(dense.payload_upload_bytes > 0.0);
    for codec in [
        Codec::QuantInt8,
        Codec::TopK {
            k_frac: 0.1,
            error_feedback: true,
        },
    ] {
        let compressed = run_codec(codec, 11);
        assert!(
            compressed.payload_upload_bytes * 3.0 <= dense.payload_upload_bytes,
            "{}: {} upload bytes not 3x below dense {}",
            compressed.codec,
            compressed.payload_upload_bytes,
            dense.payload_upload_bytes
        );
        // Same tiny workload, same seeds: the compressed run must still
        // train (chance is 0.1 on 10 classes) and stay in the dense run's
        // neighborhood.
        assert!(
            (compressed.accuracy - dense.accuracy).abs() <= 0.15,
            "{}: accuracy {} strays from dense {}",
            compressed.codec,
            compressed.accuracy,
            dense.accuracy
        );
    }
}

/// The codec a runner picked is recorded on its result, and the measured
/// totals cover broadcast + upload every round.
#[test]
fn run_results_carry_codec_and_measured_totals() {
    let r = run_codec(Codec::MaskCsr, 5);
    assert_eq!(r.codec, "mask_csr");
    assert!(r.payload_comm_bytes >= r.payload_upload_bytes);
    assert!(r.payload_upload_bytes > 0.0);
    // Analytic and measured tell the same qualitative story at full
    // density: the same order of magnitude, not wildly apart.
    assert!(r.payload_comm_bytes < r.comm_bytes * 2.0);
    assert!(r.payload_comm_bytes > r.comm_bytes * 0.2);
}
